//! §3.4.2 integration — FoV-guided delivery for live viewers: bandwidth
//! saved at matched viewport quality, with and without the crowd prior,
//! across fetch leads (buffer depths).

use sperke_bench::{cols, header, note, row};
use sperke_geo::TileGrid;
use sperke_hmp::{generate_ensemble, AttentionModel};
use sperke_live::{run_fov_live, CrowdAggregator, FovLiveConfig, LiveViewer};
use sperke_sim::{replicate, SimDuration};
use sperke_video::VideoModelBuilder;

fn run_one(seed: u64, lead_s: u64, use_crowd: bool) -> sperke_live::FovLiveReport {
    let video = VideoModelBuilder::new(seed)
        .duration(SimDuration::from_secs(30))
        .grid(TileGrid::new(4, 6))
        .build();
    let att = AttentionModel::sports(seed);
    let traces = generate_ensemble(&att, 9, SimDuration::from_secs(35), seed);
    let mut it = traces.into_iter();
    let lows: Vec<LiveViewer> = (0..8)
        .map(|i| LiveViewer {
            trace: it.next().expect("traces"),
            latency: SimDuration::from_secs(8 + i % 3),
        })
        .collect();
    let high = LiveViewer {
        trace: it.next().expect("one more"),
        latency: SimDuration::from_secs(30),
    };
    let mut crowd = CrowdAggregator::new(*video.grid(), video.chunk_duration());
    if use_crowd {
        for v in &lows {
            crowd.ingest(v, video.chunk_count());
        }
    }
    run_fov_live(
        &video,
        &high,
        &crowd,
        &FovLiveConfig {
            fetch_lead: SimDuration::from_secs(lead_s),
            ..Default::default()
        },
    )
}

fn main() {
    header(
        "§3.4.2 integration",
        "FoV-guided live viewing with crowd-sourced HMP",
    );
    let seeds = [5u64, 11, 23, 31];
    cols("fetch lead / prior", &["saving%", "blank%", "vpUtil"]);
    let mut crowd_blank_by_lead = Vec::new();
    let mut motion_blank_by_lead = Vec::new();
    for &lead in &[1u64, 2, 4, 6] {
        for use_crowd in [false, true] {
            let saving = replicate(&seeds, |s| run_one(s, lead, use_crowd).savings * 100.0);
            let blank = replicate(&seeds, |s| {
                run_one(s, lead, use_crowd).blank_fraction * 100.0
            });
            let util = replicate(&seeds, |s| {
                run_one(s, lead, use_crowd).mean_viewport_utility
            });
            row(
                &format!("{lead}s / {}", if use_crowd { "crowd" } else { "motion" }),
                &[saving.mean, blank.mean, util.mean],
            );
            if use_crowd {
                crowd_blank_by_lead.push(blank.mean);
            } else {
                motion_blank_by_lead.push(blank.mean);
            }
        }
    }
    note("savings = bytes vs a panorama delivery at the same viewport quality;");
    note("at deep buffers (long leads) motion-only prediction decays while the");
    note("crowd already watched the content — its prior holds the line.");

    // Shape: savings are real everywhere, and at the longest lead the
    // crowd prior must not blank more than motion-only.
    let last = crowd_blank_by_lead.len() - 1;
    assert!(
        crowd_blank_by_lead[last] <= motion_blank_by_lead[last] + 2.0,
        "crowd {:.1}% vs motion {:.1}% at longest lead",
        crowd_blank_by_lead[last],
        motion_blank_by_lead[last]
    );
    println!("shape check: PASS");
}
