//! E1 — Table 2: end-to-end live-broadcast latency under five network
//! conditions × three platforms.

use sperke_bench::{cols, header, note, row};
use sperke_live::{
    run_live_with_upload_vra, table2, LiveRunConfig, NetworkCondition, PlatformProfile,
};

/// The paper's measured values, same grid order.
const PAPER: [[f64; 3]; 5] = [
    [9.2, 12.4, 22.2],
    [11.0, 22.3, 22.3],
    [9.3, 20.0, 22.2],
    [22.2, 53.4, 31.5],
    [45.4, 61.8, 38.6],
];

fn main() {
    header(
        "E1 / Table 2",
        "E2E latency of live 360 broadcast (seconds)",
    );
    let cfg = LiveRunConfig::default();
    let grid = table2(&cfg);
    cols(
        "Up BW / Down BW",
        &["FB", "Peri", "YT", "FB*", "Peri*", "YT*"],
    );
    for (i, (up, down, vals)) in grid.iter().enumerate() {
        let label = format!("{up} / {down}");
        row(
            &label,
            &[
                vals[0],
                vals[1],
                vals[2],
                PAPER[i][0],
                PAPER[i][1],
                PAPER[i][2],
            ],
        );
    }
    note("columns marked * are the paper's measurements");
    note("expected shape: base FB < Periscope < YouTube; 0.5 Mbps rows inflate sharply;");
    note("Periscope (no adaptation) degrades worst on the starved downlink.");

    // What the §3.4.2 upload VRA would fix: the starved-uplink row with
    // an adaptive broadcaster (quality scales to the link; no skips).
    println!();
    cols("0.5Mbps up + upload VRA", &["FB", "Peri", "YT"]);
    let cond = NetworkCondition {
        up_cap_bps: Some(0.5e6),
        down_cap_bps: None,
    };
    let vals: Vec<f64> = PlatformProfile::all()
        .iter()
        .map(|p| run_live_with_upload_vra(p, cond, &cfg, true).mean_latency_s)
        .collect();
    row("adaptive broadcaster", &vals);
    note("vs the fixed-quality row above: liveness restored by trading encoded");
    note("quality for rate, the paper's first §3.4.2 research direction.");

    // Machine-readable shape checks (also asserted in the test suite).
    let base = &grid[0].2;
    assert!(
        base[0] < base[1] && base[1] < base[2],
        "base ordering broke"
    );
    let starved_down = &grid[4].2;
    assert!(
        starved_down[1] > starved_down[2],
        "Periscope must degrade worst"
    );
    let starved_up = &grid[3].2;
    for (i, v) in vals.iter().enumerate() {
        assert!(
            *v < starved_up[i],
            "upload VRA must cut the starved-uplink latency (col {i}: {v:.1} vs {:.1})",
            starved_up[i]
        );
    }
    println!("shape check: PASS");
}
