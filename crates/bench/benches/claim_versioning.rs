//! §2 claim — versioning vs tiling: "this approach ... incurs
//! substantial overhead at the server that needs to maintain a large
//! number of versions of the same video (e.g., up to 88 for Oculus
//! 360)". Sperke "employs a tiling-based approach to avoid storing too
//! many video versions at the server side."

use sperke_bench::{cols, header, note, row};
use sperke_geo::Orientation;
use sperke_sim::SimDuration;
use sperke_video::{Quality, StorageComparison, VersionedStore, VideoModelBuilder};

fn main() {
    header("§2 claim", "server cost of versioning vs tiling");
    let video = VideoModelBuilder::new(19)
        .duration(SimDuration::from_secs(30))
        .build();

    // --- Storage sweep over version counts.
    cols("versions", &["storeGB", "vsTiling"]);
    let tiling = video.tiling_storage_bytes(true);
    let mut oculus_ratio = 0.0;
    for &n in &[8usize, 24, 48, 88] {
        let store = VersionedStore::new(
            video.clone(),
            n,
            video.ladder().top(),
            Quality::LOWEST,
            65f64.to_radians(),
        );
        let cmp = StorageComparison::compute(&video, &store, true);
        if n == 88 {
            oculus_ratio = cmp.ratio();
        }
        row(
            &format!("{n}"),
            &[cmp.versioning_bytes as f64 / 1e9, cmp.ratio()],
        );
    }
    row("tiling (1 copy, all q)", &[tiling as f64 / 1e9, 1.0]);
    note("tiling keeps ONE spatially segmented copy per quality (plus SVC layers);");
    note("versioning multiplies the whole catalogue by the version count.");

    // --- Robustness to prediction error: the versioning client plays
    // the version chosen for the predicted gaze; tiling upgrades tiles.
    println!();
    cols("HMP error (deg)", &["versionedQ", "hqRadius"]);
    let store = VersionedStore::oculus(video.clone());
    for err_deg in [0.0f64, 10.0, 20.0, 40.0, 80.0] {
        let q = store.quality_under_error(err_deg.to_radians());
        row(
            &format!("{err_deg:.0}"),
            &[q.0 as f64, store.hq_radius.to_degrees()],
        );
    }
    note("once the gaze drifts past the version's high-quality region, the whole");
    note("viewport drops to the low-quality tier until the next version switch —");
    note("tiling degrades per-tile instead.");

    // Sanity: picking the best version keeps common gazes in HQ.
    let o = Orientation::from_degrees(33.0, -12.0, 0.0);
    let v = store.best_version(&o);
    assert!(store.in_hq_region(v, o.direction()));
    assert!(
        oculus_ratio > 5.0,
        "88 versions must dwarf tiling, got {oculus_ratio:.1}x"
    );
    println!("shape check: PASS");
}
