//! E8 — §3.4.2: crowd-sourced HMP for high-latency live viewers.
//!
//! Low-latency viewers' realtime gaze reports (causally aggregated)
//! serve as a prediction prior for viewers whose deep buffers force
//! long-horizon prefetching.

use sperke_bench::{cols, header, note, row};
use sperke_geo::TileGrid;
use sperke_hmp::{generate_ensemble, AttentionModel};
use sperke_live::{evaluate_crowd_hmp, CrowdAggregator, LiveViewer};
use sperke_sim::SimDuration;

fn main() {
    header(
        "E8 / §3.4.2",
        "crowd-sourced HMP for high-latency viewers (top-6 tile hit rate)",
    );
    let grid = TileGrid::new(4, 6);
    let cd = SimDuration::from_secs(1);
    let chunks = 28u32;

    cols("fetch lead (s)", &["motion", "+crowd", "reports"]);
    let mut gains = Vec::new();
    for &lead_s in &[1u64, 2, 4, 6] {
        // Average over seeds to smooth the synthetic population.
        let (mut m_acc, mut c_acc, mut rep_acc) = (0.0, 0.0, 0.0);
        let seeds = [5u64, 11, 23, 31];
        for &seed in &seeds {
            let att = AttentionModel::sports(seed);
            let traces = generate_ensemble(&att, 9, SimDuration::from_secs(30), seed);
            let mut it = traces.into_iter();
            let lows: Vec<LiveViewer> = (0..8)
                .map(|i| LiveViewer {
                    trace: it.next().expect("traces"),
                    latency: SimDuration::from_secs(8 + i % 3),
                })
                .collect();
            let high = LiveViewer {
                trace: it.next().expect("one more"),
                latency: SimDuration::from_secs(30),
            };
            let mut agg = CrowdAggregator::new(grid, cd);
            for v in &lows {
                agg.ingest(v, chunks);
            }
            let lead = SimDuration::from_secs(lead_s);
            let with = evaluate_crowd_hmp(&grid, cd, &agg, &high, chunks, lead, 6, true);
            let without = evaluate_crowd_hmp(&grid, cd, &agg, &high, chunks, lead, 6, false);
            m_acc += without.topk_hit_rate;
            c_acc += with.topk_hit_rate;
            rep_acc += with.mean_reports_available;
        }
        let n = seeds.len() as f64;
        row(&format!("{lead_s}"), &[m_acc / n, c_acc / n, rep_acc / n]);
        gains.push(c_acc / n - m_acc / n);
    }
    note("the crowd prior matters most at long fetch leads, where motion");
    note("extrapolation has decayed but the crowd has already watched the scene.");
    let long_lead_gain = gains.last().copied().unwrap_or(0.0);
    assert!(
        long_lead_gain > -0.05,
        "crowd prior must not hurt at long leads (gain {long_lead_gain:.3})"
    );
    assert!(
        gains.iter().any(|&g| g > 0.0),
        "crowd prior should help at some lead"
    );
    println!("shape check: PASS");
}
