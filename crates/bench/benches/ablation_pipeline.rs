//! E12 — §3.5 ablation: decoder-count sweep and decoded-frame cache
//! on/off for the client pipeline.

use sperke_bench::{cols, header, note, row};
use sperke_geo::TileGrid;
use sperke_hmp::HeadTrace;
use sperke_pipeline::{
    energy_of_mode, simulate_render, DeviceProfile, EnergyProfile, PipelineConfig, RenderMode,
    SourceVideo,
};
use sperke_sim::SimDuration;

fn main() {
    header(
        "E12 / §3.5 ablation",
        "decoder parallelism and frame-cache ablations",
    );
    let grid = TileGrid::sperke_prototype();
    let video = SourceVideo::two_k();
    let trace = HeadTrace::from_fn(SimDuration::from_secs(12), |t| {
        sperke_geo::Orientation::new(0.25 * t.as_secs_f64(), 0.0, 0.0)
    });
    let duration = SimDuration::from_secs(8);

    // --- Decoder sweep (optimized-all mode).
    cols(
        "decoders (all tiles, cached)",
        &["fps", "decUtil", "stall_s"],
    );
    let mut fps_curve = Vec::new();
    for &n in &[1usize, 2, 4, 8, 16] {
        let device = DeviceProfile::galaxy_s7().with_decoders(n);
        let s = simulate_render(
            &device,
            video,
            &grid,
            &trace,
            RenderMode::OptimizedAll,
            &PipelineConfig::default(),
            duration,
        );
        row(
            &format!("{n}"),
            &[s.fps, s.decoder_utilization, s.decode_stall.as_secs_f64()],
        );
        fps_curve.push(s.fps);
    }
    note("FPS rises with decoder count until the GPU draw cost binds, matching");
    note("the paper's use of 8 parallel decoders on the SGS7.");

    // --- Cache capacity ablation (FoV mode, panning viewer).
    println!();
    cols("cache capacity (FoV mode)", &["fps", "hitRate"]);
    for &cap in &[0usize, 8, 16, 64, 256] {
        let device = DeviceProfile::galaxy_s7();
        let s = simulate_render(
            &device,
            video,
            &grid,
            &trace,
            RenderMode::OptimizedFov,
            &PipelineConfig {
                cache_capacity: cap,
                ..Default::default()
            },
            duration,
        );
        row(&format!("{cap}"), &[s.fps, s.cache_hit_rate]);
    }
    note("capacity 0 degenerates to synchronous re-decode per frame; a few dozen");
    note("tile-frames suffice because only ~2 source frames are live at once.");

    // --- Device comparison.
    println!();
    cols("device (figure-5 config 2)", &["fps"]);
    for device in [DeviceProfile::galaxy_s5(), DeviceProfile::galaxy_s7()] {
        let s = simulate_render(
            &device,
            video,
            &grid,
            &trace,
            RenderMode::OptimizedAll,
            &PipelineConfig::default(),
            duration,
        );
        row(&device.name, &[s.fps]);
    }

    // --- Energy per Figure-5 configuration (§3.5's "limited
    // computation and energy resources").
    println!();
    cols(
        "mode energy (10 MB downloaded)",
        &["watts", "battHrs", "J/frame"],
    );
    let eprofile = EnergyProfile::galaxy_s7();
    for mode in RenderMode::ALL {
        let s = simulate_render(
            &DeviceProfile::galaxy_s7(),
            video,
            &grid,
            &trace,
            mode,
            &PipelineConfig::default(),
            duration,
        );
        let e = energy_of_mode(
            &eprofile,
            &s,
            mode,
            grid.tile_count(),
            4,
            video.fps,
            10_000_000,
        );
        row(
            mode.label(),
            &[e.mean_watts, e.battery_hours, e.total_j / s.frames as f64],
        );
    }
    note("FoV-only rendering also wins on energy: fewer tiles decoded and drawn");
    note("per second at a higher frame rate.");

    assert!(
        fps_curve[3] > fps_curve[0] * 1.5,
        "parallelism must pay off"
    );
    assert!(
        (fps_curve[4] - fps_curve[3]).abs() < fps_curve[3] * 0.2,
        "beyond 8 decoders the render loop binds"
    );
    println!("shape check: PASS");
}
