//! Ablation — selection policy: the paper's banded FoV/OOS split
//! (§3.1.2) vs the stochastic expected-utility knapsack (§3.2), both
//! inside the full streaming loop.

use sperke_bench::{cols, header, note, row};
use sperke_core::Sperke;
use sperke_hmp::Behavior;
use sperke_player::{PlannerKind, PlayerConfig};
use sperke_sim::SimDuration;
use sperke_vra::{SelectionPolicy, SperkeConfig};

fn run(
    selection: SelectionPolicy,
    behavior: Behavior,
    bw: f64,
    crowd: usize,
) -> sperke_player::QoeReport {
    let player = PlayerConfig {
        planner: PlannerKind::Sperke(SperkeConfig {
            selection,
            ..Default::default()
        }),
        ..Default::default()
    };
    let mut b = Sperke::builder(47)
        .duration(SimDuration::from_secs(40))
        .behavior(behavior)
        .single_link(bw)
        .player(player);
    if crowd > 0 {
        b = b.with_crowd(crowd);
    }
    b.run().qoe
}

fn main() {
    header(
        "ablation",
        "banded FoV/OOS selection vs stochastic knapsack (§3.2)",
    );
    cols(
        "behavior / bw / policy",
        &["vpUtil", "blank%", "wasteFrac", "score"],
    );
    let policies = [
        ("banded", SelectionPolicy::Banded),
        (
            "knapsack",
            SelectionPolicy::Stochastic {
                min_probability: 0.05,
            },
        ),
    ];
    let mut pairs = Vec::new();
    for behavior in [Behavior::Focused, Behavior::Explorer] {
        for bw in [10e6, 25e6] {
            let mut utils = Vec::new();
            for (name, policy) in policies {
                let q = run(policy, behavior, bw, 8);
                row(
                    &format!("{behavior:?} / {:.0}Mbps / {name}", bw / 1e6),
                    &[
                        q.mean_viewport_utility,
                        q.mean_blank_fraction * 100.0,
                        q.waste_fraction(),
                        q.score,
                    ],
                );
                utils.push(q.mean_viewport_utility);
            }
            pairs.push((utils[0], utils[1]));
        }
    }
    note("the knapsack maximizes expected viewport utility and wins that metric");
    note("throughout; at tight budgets it concentrates bytes on probable tiles and");
    note("trades coverage (blank%), which the banded heuristic's uniform-quality");
    note("FoV protects — the linear p*U objective underweights blank-screen risk.");

    for (banded, knap) in &pairs {
        assert!(
            *knap >= *banded,
            "knapsack must win its own objective: {knap:.2} vs banded {banded:.2}"
        );
    }
    println!("shape check: PASS");
}
