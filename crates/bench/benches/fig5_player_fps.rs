//! E2 — Figure 5: Sperke player FPS under three rendering
//! configurations (SGS7, 2K video, 2×4 tiles, 8 parallel decoders).

use sperke_bench::{cols, header, note, row};
use sperke_geo::TileGrid;
use sperke_hmp::HeadTrace;
use sperke_pipeline::{figure5, DeviceProfile, SourceVideo};
use sperke_sim::SimDuration;

const PAPER_FPS: [f64; 3] = [11.0, 53.0, 120.0];

fn main() {
    header(
        "E2 / Figure 5",
        "player FPS: 2K video, 2x4 tiles, 8 decoders (SGS7)",
    );
    let device = DeviceProfile::galaxy_s7();
    let grid = TileGrid::sperke_prototype();
    // A viewer panning gently, as in a handheld demo.
    let trace = HeadTrace::from_fn(SimDuration::from_secs(15), |t| {
        sperke_geo::Orientation::new(0.25 * t.as_secs_f64(), 0.0, 0.0)
    });
    let results = figure5(
        &device,
        SourceVideo::two_k(),
        &grid,
        &trace,
        SimDuration::from_secs(10),
    );

    cols("configuration", &["fps", "paper", "cacheHit", "decUtil"]);
    for (i, (mode, stats)) in results.iter().enumerate() {
        row(
            mode.label(),
            &[
                stats.fps,
                PAPER_FPS[i],
                stats.cache_hit_rate,
                stats.decoder_utilization,
            ],
        );
    }
    note("paper: 11 -> 53 -> 120 FPS; the two optimizations (parallel decoding +");
    note("decoded-frame cache, then FoV-only rendering) must each be a large jump.");

    let fps: Vec<f64> = results.iter().map(|(_, s)| s.fps).collect();
    assert!(
        fps[0] * 3.0 < fps[1] && fps[1] * 1.5 < fps[2],
        "shape broke"
    );
    println!("shape check: PASS");
}
