//! Sweep harness speedup: serial vs parallel execution of a 16-point
//! fleet grid (4 egress capacities × 2 delivery schemes × 2 seeds).
//!
//! Every point is the same deterministic single-threaded simulation;
//! the worker pool only divides wall-clock time. The acceptance bar is
//! ≥ 2× at 4 threads — and, non-negotiably, a byte-identical report at
//! every thread count.

use sperke_bench::{cols, header, note, row};
use sperke_core::{run_fleet_sweep, FleetConfig, FleetGrid};
use sperke_sim::SimDuration;
use sperke_video::VideoModelBuilder;
use std::time::Instant;

fn main() {
    header(
        "sweep",
        "parallel sweep harness: serial vs worker-pool wall clock",
    );
    let video = VideoModelBuilder::new(61)
        .duration(SimDuration::from_secs(15))
        .build();
    let grid = FleetGrid::new(FleetConfig {
        viewers: 10,
        ..Default::default()
    })
    .egress_axis(vec![40e6, 80e6, 160e6, 320e6])
    .scheme_axis(vec![true, false])
    .seed_axis(vec![7, 23]);
    assert_eq!(grid.points().len(), 16, "the 16-point acceptance grid");

    // Warm-up run (page in code and video tables) before timing.
    let reference = run_fleet_sweep(&video, &grid, 1);

    cols("threads", &["seconds", "speedup", "pts/s"]);
    let mut serial_secs = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let report = run_fleet_sweep(&video, &grid, threads);
        let secs = start.elapsed().as_secs_f64();
        if threads == 1 {
            serial_secs = secs;
        }
        assert_eq!(
            report.to_jsonl(),
            reference.to_jsonl(),
            "threads={threads} must merge byte-identically"
        );
        row(
            &format!("{threads}"),
            &[secs, serial_secs / secs, 16.0 / secs],
        );
    }
    let start = Instant::now();
    let report4 = run_fleet_sweep(&video, &grid, 4);
    let quad_secs = start.elapsed().as_secs_f64();
    let speedup = serial_secs / quad_secs;
    assert_eq!(report4.digest(), reference.digest());

    note(&format!(
        "4-thread speedup {speedup:.2}x over serial ({serial_secs:.2}s -> {quad_secs:.2}s)"
    ));
    note("every report above hashed to the same digest: parallelism divides");
    note("wall-clock only, never a byte of the result.");
    let cores = sperke_sim::sweep::default_threads();
    if cores >= 4 {
        assert!(
            speedup >= 2.0,
            "acceptance: >= 2x wall-clock speedup at 4 threads on the 16-point grid \
             (measured {speedup:.2}x on {cores} cores)"
        );
    } else {
        note(&format!(
            "host exposes only {cores} core(s): the >= 2x @ 4 threads acceptance \
             assertion needs >= 4 cores and is skipped; determinism was still verified."
        ));
    }
}
