//! The holistic Sperke 360° VRA (§3.1.2): super-chunk rate adaptation +
//! OOS selection + incremental upgrades, with the hybrid SVC/AVC policy.
//!
//! Given a tile forecast and network state, [`SperkeVra::plan`] produces
//! a [`FetchPlan`]: which chunks to fetch, at which qualities, in which
//! encoding form, with which Table-1 priorities. The player executes
//! plans and calls back with buffer state for upgrade passes.

use crate::abr::{Abr, AbrContext};
use crate::knapsack::select_stochastic;
use crate::oos::{select_oos, OosConfig};
use crate::superchunk::SuperChunk;
use serde::{Deserialize, Serialize};
use sperke_hmp::TileForecast;
use sperke_net::{ChunkPriority, SpatialPriority, TemporalPriority};
use sperke_sim::trace::{CandidateQuality, Subsystem, TraceEvent, TraceLevel, TraceSink};
use sperke_sim::{SimDuration, SimTime};
use sperke_video::{CellId, ChunkForm, ChunkId, ChunkTime, Layer, Quality, Scheme, VideoModel};

/// Which encodings the server offers / the client uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EncodingPolicy {
    /// AVC only: upgrades re-download (the mismatch of §3.1.1).
    AvcOnly,
    /// SVC only: every fetch is layered, paying the overhead everywhere.
    SvcOnly,
    /// Hybrid (§3.1.2): chunks likely to upgrade fetch SVC; chunks
    /// unlikely to upgrade fetch plain AVC to avoid the overhead.
    Hybrid {
        /// Fetch SVC when the upgrade probability estimate is at least
        /// this (we use "the forecast is uncertain" as the proxy: cells
        /// with mid-range probability are the ones that get corrected).
        svc_when_uncertain_below: f64,
    },
}

impl EncodingPolicy {
    /// The scheme used to *price* a fetch under this policy.
    pub fn scheme_for(&self, video: &VideoModel, probability: f64) -> Scheme {
        match *self {
            EncodingPolicy::AvcOnly => Scheme::Avc,
            EncodingPolicy::SvcOnly => Scheme::Svc {
                overhead: video.svc_overhead(),
            },
            EncodingPolicy::Hybrid {
                svc_when_uncertain_below,
            } => {
                if probability < svc_when_uncertain_below {
                    Scheme::Svc {
                        overhead: video.svc_overhead(),
                    }
                } else {
                    Scheme::Avc
                }
            }
        }
    }

    /// The wire form corresponding to [`EncodingPolicy::scheme_for`].
    pub fn form_for(&self, video: &VideoModel, probability: f64, quality: Quality) -> ChunkForm {
        match self.scheme_for(video, probability) {
            Scheme::Avc => ChunkForm::Avc,
            Scheme::Svc { .. } => {
                // Cumulative fetch of all layers through `quality`; the
                // transfer engine only needs sizes, so a single request
                // suffices (individual layers appear during upgrades).
                let _ = Layer(quality.0);
                ChunkForm::SvcCumulative
            }
        }
    }
}

/// One planned fetch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannedFetch {
    /// The chunk to request.
    pub chunk: ChunkId,
    /// The wire form (AVC / SVC cumulative / SVC layer).
    pub form: ChunkForm,
    /// Bytes this fetch will cost.
    pub bytes: u64,
    /// Delivery priority (Table 1).
    pub priority: ChunkPriority,
    /// The forecast probability that motivated this fetch.
    pub probability: f64,
}

/// The plan for one chunk time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FetchPlan {
    /// The chunk time planned.
    pub time: ChunkTime,
    /// The quality chosen for the FoV super chunk.
    pub fov_quality: Quality,
    /// All fetches: FoV tiles first (by id), then OOS by probability.
    pub fetches: Vec<PlannedFetch>,
}

impl FetchPlan {
    /// Total planned bytes.
    pub fn total_bytes(&self) -> u64 {
        self.fetches.iter().map(|f| f.bytes).sum()
    }

    /// The FoV subset of fetches.
    pub fn fov_fetches(&self) -> impl Iterator<Item = &PlannedFetch> {
        self.fetches
            .iter()
            .filter(|f| f.priority.spatial == SpatialPriority::Fov)
    }

    /// The OOS subset of fetches.
    pub fn oos_fetches(&self) -> impl Iterator<Item = &PlannedFetch> {
        self.fetches
            .iter()
            .filter(|f| f.priority.spatial == SpatialPriority::Oos)
    }
}

/// Network/playback state the planner needs.
#[derive(Debug, Clone)]
pub struct PlanInput<'a> {
    /// The video being streamed.
    pub video: &'a VideoModel,
    /// Tile forecast for the target chunk time.
    pub forecast: &'a TileForecast,
    /// The chunk time to plan.
    pub time: ChunkTime,
    /// Current virtual time.
    pub now: SimTime,
    /// Playback buffer level (time until the target chunk's deadline).
    pub buffer: SimDuration,
    /// Conservative bandwidth estimate, bits/second.
    pub bandwidth_bps: Option<f64>,
    /// Measured bottleneck bandwidth from the transport's BBR probe,
    /// bits/second; `None` when capacity probing is off. Forwarded to
    /// the inner ABR, where the control-theoretic policies prefer it
    /// over the declared estimate.
    pub measured_bps: Option<f64>,
    /// Optional bandwidth forecast for MPC-style ABRs.
    pub bandwidth_forecast: Vec<f64>,
    /// Quality of the previous super chunk.
    pub last_quality: Quality,
}

/// How tiles and qualities are selected per chunk time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// The paper's three-part decomposition: super chunk at one quality
    /// (inner ABR), then banded OOS selection (§3.1.2).
    Banded,
    /// The §3.2 stochastic optimization: greedy expected-utility
    /// knapsack over (tile, quality) pairs under the byte budget.
    Stochastic {
        /// Tiles below this probability are never fetched.
        min_probability: f64,
    },
}

/// Tuning for the holistic planner.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SperkeConfig {
    /// Selection policy.
    pub selection: SelectionPolicy,
    /// Probability above which a tile counts as FoV.
    pub fov_threshold: f64,
    /// OOS selection settings.
    pub oos: OosConfig,
    /// Encoding policy.
    pub encoding: EncodingPolicy,
    /// Fraction of the bandwidth-estimate budget the FoV super chunk may
    /// consume; the rest funds OOS tiles.
    pub fov_budget_share: f64,
    /// OOS spending cap as a fraction of the FoV super chunk's bytes —
    /// keeps ample bandwidth from degenerating into fetching the whole
    /// panorama "just in case".
    pub oos_budget_vs_fov: f64,
    /// A chunk is "urgent" (Table 1) when its deadline is within this.
    pub urgent_window: SimDuration,
}

impl Default for SperkeConfig {
    fn default() -> Self {
        SperkeConfig {
            selection: SelectionPolicy::Banded,
            fov_threshold: 0.75,
            oos: OosConfig::default(),
            encoding: EncodingPolicy::Hybrid {
                svc_when_uncertain_below: 0.85,
            },
            fov_budget_share: 0.8,
            oos_budget_vs_fov: 0.6,
            urgent_window: SimDuration::from_millis(700),
        }
    }
}

/// The holistic Sperke rate-adaptation planner.
pub struct SperkeVra<A: Abr> {
    /// The inner ABR driving the super-chunk quality (part one).
    pub abr: A,
    /// Tuning.
    pub config: SperkeConfig,
    trace: TraceSink,
}

impl<A: Abr> SperkeVra<A> {
    /// Construct with an inner ABR.
    pub fn new(abr: A, config: SperkeConfig) -> Self {
        SperkeVra {
            abr,
            config,
            trace: TraceSink::disabled(),
        }
    }

    /// Record ABR decisions (with their candidate qualities) into `sink`.
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// Emit the per-plan [`TraceEvent::AbrDecision`], with the candidate
    /// ladder only when the sink actually records VRA decisions.
    fn emit_decision(&self, input: &PlanInput<'_>, chosen: Quality, unit_bitrate: &[f64]) {
        emit_abr_decision(&self.trace, input, chosen, unit_bitrate);
    }

    /// Produce the fetch plan for one chunk time.
    pub fn plan(&mut self, input: &PlanInput<'_>) -> FetchPlan {
        if let SelectionPolicy::Stochastic { min_probability } = self.config.selection {
            return self.plan_stochastic(input, min_probability);
        }
        let video = input.video;
        let grid = video.grid();
        let _ = grid;

        // Part one: the super chunk and its quality via the inner ABR.
        let sc = SuperChunk::from_forecast(input.forecast, input.time, self.config.fov_threshold);
        let pricing_scheme = self.config.encoding.scheme_for(video, 1.0);
        let unit_bitrate: Vec<f64> = video
            .ladder()
            .qualities()
            .map(|q| sc.bitrate_at(video, q, pricing_scheme))
            .collect();
        // Scale the ABR's budget to the FoV share so OOS always has room.
        let ctx = AbrContext {
            ladder: video.ladder(),
            unit_bitrate,
            buffer: input.buffer,
            bandwidth_bps: input
                .bandwidth_bps
                .map(|b| b * self.config.fov_budget_share),
            measured_bps: input.measured_bps.map(|b| b * self.config.fov_budget_share),
            bandwidth_forecast: input
                .bandwidth_forecast
                .iter()
                .map(|b| b * self.config.fov_budget_share)
                .collect(),
            last_quality: input.last_quality,
            chunk_duration: video.chunk_duration(),
        };
        let fov_quality = self.abr.choose(&ctx);
        self.emit_decision(input, fov_quality, &ctx.unit_bitrate);

        // Temporal priority: near-deadline chunks are urgent.
        let deadline = video.chunk_deadline(input.time);
        let remaining = input.buffer; // buffer level == time to this deadline
        let temporal = if remaining <= self.config.urgent_window {
            TemporalPriority::Urgent
        } else {
            TemporalPriority::Regular
        };
        let _ = deadline;

        let mut fetches = Vec::new();
        for &tile in &sc.tiles {
            let p = input.forecast.prob(tile);
            let scheme = self.config.encoding.scheme_for(video, p);
            let id = ChunkId::new(fov_quality, tile, input.time);
            fetches.push(PlannedFetch {
                chunk: id,
                form: self.config.encoding.form_for(video, p, fov_quality),
                bytes: video.chunk_bytes(id, scheme),
                priority: ChunkPriority {
                    spatial: SpatialPriority::Fov,
                    temporal,
                },
                probability: p,
            });
        }

        // Part two: OOS tiles from their bounded budget share. The OOS
        // pool is (1 - fov_budget_share) of the estimate, topped up by
        // whatever the FoV fetch left unused of its own share — but it
        // never grows past the configured split, so ample bandwidth
        // doesn't degenerate into fetching the whole panorama.
        let fov_bytes: u64 = fetches.iter().map(|f| f.bytes).sum();
        let budget_bytes = input
            .bandwidth_bps
            .map(|bw| {
                let chunk_secs = video.chunk_duration().as_secs_f64();
                let total = (bw * chunk_secs / 8.0) as u64;
                let oos_share =
                    ((1.0 - self.config.fov_budget_share).max(0.0) * bw * chunk_secs / 8.0) as u64;
                let vs_fov = (self.config.oos_budget_vs_fov.max(0.0) * fov_bytes as f64) as u64;
                oos_share.min(vs_fov).min(total.saturating_sub(fov_bytes))
            })
            .unwrap_or(0);
        let oos_scheme = self.config.encoding.scheme_for(video, 0.3); // OOS cells are uncertain
        let oos = select_oos(
            video,
            input.forecast,
            input.time,
            &sc.tiles,
            fov_quality,
            oos_scheme,
            budget_bytes,
            &self.config.oos,
        );
        for choice in oos {
            let p = input.forecast.prob(choice.tile);
            let id = ChunkId::new(choice.quality, choice.tile, input.time);
            fetches.push(PlannedFetch {
                chunk: id,
                form: self
                    .config
                    .encoding
                    .form_for(video, p.min(0.3), choice.quality),
                bytes: video.chunk_bytes(id, oos_scheme),
                priority: ChunkPriority {
                    spatial: SpatialPriority::Oos,
                    temporal: TemporalPriority::Regular,
                },
                probability: p,
            });
        }

        FetchPlan {
            time: input.time,
            fov_quality,
            fetches,
        }
    }
}

impl<A: Abr> SperkeVra<A> {
    /// The §3.2 stochastic-optimization plan: one greedy knapsack over
    /// all (tile, quality) pairs instead of the banded FoV/OOS split.
    fn plan_stochastic(&mut self, input: &PlanInput<'_>, min_probability: f64) -> FetchPlan {
        let video = input.video;
        let budget_bytes = input
            .bandwidth_bps
            .map(|bw| (bw * video.chunk_duration().as_secs_f64() / 8.0) as u64)
            .unwrap_or_else(|| {
                // No estimate yet: a conservative base-layer FoV budget.
                SuperChunk::from_forecast(input.forecast, input.time, self.config.fov_threshold)
                    .bytes_at(video, Quality::LOWEST, Scheme::Avc)
            });
        let pricing = self.config.encoding.scheme_for(video, 0.5);
        let choices = select_stochastic(
            video,
            input.forecast,
            input.time,
            budget_bytes,
            pricing,
            min_probability,
        );

        let deadline_close = input.buffer <= self.config.urgent_window;
        let mut fetches = Vec::with_capacity(choices.len());
        let mut fov_quality = Quality::LOWEST;
        let mut best_p = -1.0;
        for c in &choices {
            let p = input.forecast.prob(c.tile);
            if p > best_p {
                best_p = p;
                fov_quality = c.quality;
            }
            let spatial = if p >= self.config.fov_threshold {
                SpatialPriority::Fov
            } else {
                SpatialPriority::Oos
            };
            let temporal = if deadline_close && spatial == SpatialPriority::Fov {
                TemporalPriority::Urgent
            } else {
                TemporalPriority::Regular
            };
            let scheme = self.config.encoding.scheme_for(video, p);
            let id = ChunkId::new(c.quality, c.tile, input.time);
            fetches.push(PlannedFetch {
                chunk: id,
                form: self.config.encoding.form_for(video, p, c.quality),
                bytes: video.chunk_bytes(id, scheme),
                priority: ChunkPriority { spatial, temporal },
                probability: p,
            });
        }
        self.emit_decision(input, fov_quality, &[]);
        FetchPlan {
            time: input.time,
            fov_quality,
            fetches,
        }
    }
}

/// The shared [`TraceEvent::AbrDecision`] emit: candidate ladder only
/// when the sink actually records VRA decisions. Used by the Sperke
/// planner and by the policy-suite wrapper so every planner's decisions
/// land in the trace with identical shape.
pub(crate) fn emit_abr_decision(
    trace: &TraceSink,
    input: &PlanInput<'_>,
    chosen: Quality,
    unit_bitrate: &[f64],
) {
    if !trace.enabled(Subsystem::Vra, TraceLevel::Decisions) {
        return;
    }
    let ladder = input.video.ladder();
    let candidates = ladder
        .qualities()
        .zip(unit_bitrate.iter())
        .map(|(q, &bps)| CandidateQuality {
            quality: q.0,
            bitrate_bps: bps,
            utility: ladder.utility(q),
        })
        .collect();
    trace.emit(TraceEvent::AbrDecision {
        at: input.now,
        chunk: input.time.0,
        chosen: chosen.0,
        buffer_ms: input.buffer.as_nanos() / 1_000_000,
        bandwidth_bps: input.bandwidth_bps.unwrap_or(0.0),
        candidates,
    });
}

/// A FoV-agnostic plan (the YouTube/Facebook baseline of §2): every tile
/// of the panorama at one quality, chosen by the inner ABR against the
/// full-panorama bitrate.
#[allow(clippy::too_many_arguments)]
pub fn plan_fov_agnostic<A: Abr>(
    abr: &mut A,
    video: &VideoModel,
    time: ChunkTime,
    buffer: SimDuration,
    bandwidth_bps: Option<f64>,
    measured_bps: Option<f64>,
    last_quality: Quality,
) -> FetchPlan {
    let unit_bitrate: Vec<f64> = video
        .ladder()
        .qualities()
        .map(|q| {
            video.panorama_bytes(q, time, Scheme::Avc) as f64 * 8.0
                / video.chunk_duration().as_secs_f64()
        })
        .collect();
    let ctx = AbrContext {
        ladder: video.ladder(),
        unit_bitrate,
        buffer,
        bandwidth_bps,
        measured_bps,
        bandwidth_forecast: vec![],
        last_quality,
        chunk_duration: video.chunk_duration(),
    };
    let q = abr.choose(&ctx);
    let fetches = video
        .grid()
        .tiles()
        .map(|tile| {
            let id = ChunkId::new(q, tile, time);
            PlannedFetch {
                chunk: id,
                form: ChunkForm::Avc,
                bytes: video.chunk_bytes(id, Scheme::Avc),
                priority: ChunkPriority::FOV,
                probability: 1.0,
            }
        })
        .collect();
    FetchPlan {
        time,
        fov_quality: q,
        fetches,
    }
}

/// Build upgrade candidates for buffered cells against a fresh forecast
/// (§3.1.2 part three); pair with
/// [`decide_upgrade`](crate::upgrade::decide_upgrade).
pub fn upgrade_candidates(
    video: &VideoModel,
    buffered: &[(CellId, Quality)],
    forecast: &TileForecast,
    wanted_quality: Quality,
) -> Vec<crate::upgrade::UpgradeCandidate> {
    buffered
        .iter()
        .filter(|&&(_, have)| have < wanted_quality)
        .map(|&(cell, have)| crate::upgrade::UpgradeCandidate {
            cell,
            have,
            want: wanted_quality,
            probability: forecast.prob(cell.tile),
            deadline: video.chunk_deadline(cell.time),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abr::RateBased;
    use sperke_geo::Orientation;
    use sperke_hmp::FusedForecaster;
    use sperke_video::VideoModelBuilder;

    fn video() -> VideoModel {
        VideoModelBuilder::new(9)
            .duration(SimDuration::from_secs(20))
            .build()
    }

    fn forecast(video: &VideoModel) -> TileForecast {
        let history = vec![(SimTime::ZERO, Orientation::FRONT)];
        FusedForecaster::motion_only().forecast(
            video.grid(),
            &history,
            SimTime::ZERO,
            SimTime::from_secs(1),
            ChunkTime(1),
        )
    }

    fn input<'a>(video: &'a VideoModel, fc: &'a TileForecast, bw: Option<f64>) -> PlanInput<'a> {
        PlanInput {
            video,
            forecast: fc,
            time: ChunkTime(1),
            now: SimTime::ZERO,
            buffer: SimDuration::from_secs(2),
            bandwidth_bps: bw,
            measured_bps: None,
            bandwidth_forecast: vec![],
            last_quality: Quality(1),
        }
    }

    #[test]
    fn plan_contains_fov_and_oos() {
        let v = video();
        let fc = forecast(&v);
        let mut vra = SperkeVra::new(RateBased::default(), SperkeConfig::default());
        let plan = vra.plan(&input(&v, &fc, Some(30e6)));
        assert!(plan.fov_fetches().count() > 0);
        assert!(plan.oos_fetches().count() > 0);
        // FoV tiles share one quality.
        for f in plan.fov_fetches() {
            assert_eq!(f.chunk.quality, plan.fov_quality);
        }
        // OOS strictly below.
        for f in plan.oos_fetches() {
            assert!(f.chunk.quality < plan.fov_quality);
        }
    }

    #[test]
    fn plan_respects_bandwidth_budget() {
        let v = video();
        let fc = forecast(&v);
        let mut vra = SperkeVra::new(RateBased::default(), SperkeConfig::default());
        let bw = 20e6;
        let plan = vra.plan(&input(&v, &fc, Some(bw)));
        let plan_bps = plan.total_bytes() as f64 * 8.0 / v.chunk_duration().as_secs_f64();
        assert!(
            plan_bps <= bw * 1.05,
            "plan rate {plan_bps:.0} exceeds budget {bw:.0}"
        );
    }

    #[test]
    fn no_estimate_means_conservative_plan() {
        let v = video();
        let fc = forecast(&v);
        let mut vra = SperkeVra::new(RateBased::default(), SperkeConfig::default());
        let plan = vra.plan(&input(&v, &fc, None));
        assert_eq!(plan.fov_quality, Quality::LOWEST);
        assert_eq!(plan.oos_fetches().count(), 0, "no budget, no OOS");
    }

    #[test]
    fn thin_buffer_marks_fetches_urgent() {
        let v = video();
        let fc = forecast(&v);
        let mut vra = SperkeVra::new(RateBased::default(), SperkeConfig::default());
        let mut inp = input(&v, &fc, Some(30e6));
        inp.buffer = SimDuration::from_millis(300);
        let plan = vra.plan(&inp);
        for f in plan.fov_fetches() {
            assert_eq!(f.priority.temporal, TemporalPriority::Urgent);
        }
    }

    #[test]
    fn hybrid_policy_mixes_forms() {
        let v = video();
        let fc = forecast(&v);
        let config = SperkeConfig {
            encoding: EncodingPolicy::Hybrid {
                svc_when_uncertain_below: 0.85,
            },
            ..Default::default()
        };
        let mut vra = SperkeVra::new(RateBased::default(), config);
        let plan = vra.plan(&input(&v, &fc, Some(40e6)));
        let has_avc = plan.fetches.iter().any(|f| f.form == ChunkForm::Avc);
        let has_svc = plan
            .fetches
            .iter()
            .any(|f| f.form == ChunkForm::SvcCumulative);
        assert!(
            has_avc && has_svc,
            "hybrid should fetch certain cells as AVC and uncertain ones as SVC"
        );
        // High-probability FoV centre tiles must be AVC (no overhead).
        for f in plan.fetches.iter().filter(|f| f.probability > 0.9) {
            assert_eq!(f.form, ChunkForm::Avc);
        }
    }

    #[test]
    fn svc_only_plan_is_bigger_than_avc_only() {
        let v = video();
        let fc = forecast(&v);
        let mk = |enc| {
            let mut vra = SperkeVra::new(
                RateBased::default(),
                SperkeConfig {
                    encoding: enc,
                    ..Default::default()
                },
            );
            // Fix quality via generous bandwidth and same last_quality.
            vra.plan(&input(&v, &fc, Some(25e6)))
        };
        let avc = mk(EncodingPolicy::AvcOnly);
        let svc = mk(EncodingPolicy::SvcOnly);
        assert_eq!(
            avc.fov_quality, svc.fov_quality,
            "same ABR decision expected"
        );
        assert!(
            svc.total_bytes() > avc.total_bytes(),
            "SVC pays its overhead"
        );
    }

    #[test]
    fn fov_agnostic_fetches_every_tile() {
        let v = video();
        let mut abr = RateBased::default();
        let plan = plan_fov_agnostic(
            &mut abr,
            &v,
            ChunkTime(0),
            SimDuration::from_secs(5),
            Some(100e6),
            None,
            Quality(0),
        );
        assert_eq!(plan.fetches.len(), v.grid().tile_count());
    }

    #[test]
    fn fov_guided_plan_is_cheaper_than_agnostic_at_same_quality() {
        let v = video();
        let fc = forecast(&v);
        let mut vra = SperkeVra::new(RateBased::default(), SperkeConfig::default());
        let guided = vra.plan(&input(&v, &fc, Some(30e6)));
        // Compare against the whole panorama at the same FoV quality.
        let pano = v.panorama_bytes(guided.fov_quality, ChunkTime(1), Scheme::Avc);
        assert!(
            (guided.total_bytes() as f64) < 0.8 * pano as f64,
            "guided {} vs panorama {}",
            guided.total_bytes(),
            pano
        );
    }

    #[test]
    fn stochastic_policy_plans_within_budget() {
        let v = video();
        let fc = forecast(&v);
        let config = SperkeConfig {
            selection: SelectionPolicy::Stochastic {
                min_probability: 0.05,
            },
            ..Default::default()
        };
        let mut vra = SperkeVra::new(RateBased::default(), config);
        let bw = 25e6;
        let plan = vra.plan(&input(&v, &fc, Some(bw)));
        assert!(!plan.fetches.is_empty());
        let plan_bps = plan.total_bytes() as f64 * 8.0 / v.chunk_duration().as_secs_f64();
        assert!(
            plan_bps <= bw * 1.15,
            "plan {plan_bps:.0} vs budget {bw:.0}"
        );
        // Both priorities present: certain tiles FoV, uncertain tiles OOS.
        assert!(plan.fov_fetches().count() > 0);
        assert!(plan.oos_fetches().count() > 0);
    }

    #[test]
    fn stochastic_policy_handles_missing_estimate() {
        let v = video();
        let fc = forecast(&v);
        let config = SperkeConfig {
            selection: SelectionPolicy::Stochastic {
                min_probability: 0.05,
            },
            ..Default::default()
        };
        let mut vra = SperkeVra::new(RateBased::default(), config);
        let plan = vra.plan(&input(&v, &fc, None));
        assert!(
            !plan.fetches.is_empty(),
            "must still fetch a base-layer FoV"
        );
        // The conservative budget keeps the plan near the base layer
        // (the knapsack may upgrade a tile or two within the budget).
        assert!(plan.fov_quality <= Quality(1));
    }

    #[test]
    fn upgrade_candidates_filter_by_have() {
        let v = video();
        let fc = forecast(&v);
        let buffered = vec![
            (CellId::new(sperke_geo::TileId(0), ChunkTime(2)), Quality(0)),
            (CellId::new(sperke_geo::TileId(1), ChunkTime(2)), Quality(3)),
        ];
        let cands = upgrade_candidates(&v, &buffered, &fc, Quality(2));
        assert_eq!(cands.len(), 1, "only the Q0 cell wants an upgrade to Q2");
        assert_eq!(cands[0].have, Quality(0));
        assert_eq!(cands[0].want, Quality(2));
    }
}
