//! Incremental chunk upgrade decisions (§3.1.1 + §3.1.2 part three).
//!
//! "An updated scheduling may trigger chunks' incremental update (i.e.,
//! fetching enhancement layers). Two decisions need to be carefully
//! made: (1) **upgrade or not**: upgrading improves the quality while
//! not upgrading saves bandwidth for fetching future chunks; (2) **when
//! to upgrade**: upgrading too early may lead to extra bandwidth waste
//! since the HMP may possibly change again in the near future, while
//! upgrading too late may miss the playback deadline."

use serde::{Deserialize, Serialize};
use sperke_sim::{SimDuration, SimTime};
use sperke_video::{CellId, CellSizes, Quality, Scheme};

/// Tuning for upgrade decisions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpgradeConfig {
    /// Only upgrade cells whose on-screen probability is at least this.
    pub min_probability: f64,
    /// Safety factor on the estimated fetch time vs the remaining time
    /// (1.5 = require 50 % slack).
    pub deadline_safety: f64,
    /// Defer the upgrade until this close to the deadline (as a multiple
    /// of the estimated fetch time) — the "when to upgrade" half: late
    /// enough that the HMP has settled, early enough to make it.
    pub urgency_factor: f64,
}

impl Default for UpgradeConfig {
    fn default() -> Self {
        UpgradeConfig {
            min_probability: 0.5,
            deadline_safety: 1.3,
            urgency_factor: 2.0,
        }
    }
}

/// The verdict for one candidate upgrade.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum UpgradeDecision {
    /// Fetch the delta now.
    UpgradeNow {
        /// Bytes of the enhancement layers to fetch.
        delta_bytes: u64,
    },
    /// Worth upgrading, but not yet — re-evaluate at the given time.
    Defer {
        /// When to look again.
        revisit_at: SimTime,
    },
    /// Don't upgrade (probability too low, or it can no longer make the
    /// deadline).
    Skip,
}

/// A candidate: a cell already in the buffer at `have`, which the
/// current plan would like at `want`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpgradeCandidate {
    /// The cell (tile × chunk time).
    pub cell: CellId,
    /// Quality already buffered.
    pub have: Quality,
    /// Quality the plan wants.
    pub want: Quality,
    /// Forecast on-screen probability of the cell.
    pub probability: f64,
    /// The cell's playback deadline.
    pub deadline: SimTime,
}

/// Decide whether/when to upgrade one cell.
///
/// `scheme` must be the SVC-capable scheme for deltas to be meaningful;
/// with [`Scheme::Avc`] the "delta" is the full re-download, which this
/// logic prices accordingly (making upgrades rarer — exactly the
/// mismatch the paper pinpoints).
pub fn decide_upgrade(
    candidate: &UpgradeCandidate,
    sizes: &CellSizes,
    scheme: Scheme,
    now: SimTime,
    bandwidth_bps: f64,
    config: &UpgradeConfig,
) -> UpgradeDecision {
    if candidate.want <= candidate.have || candidate.probability < config.min_probability {
        return UpgradeDecision::Skip;
    }
    if bandwidth_bps <= 0.0 {
        return UpgradeDecision::Skip;
    }
    let delta_bytes = sizes.upgrade_cost(scheme, candidate.have, candidate.want);
    let fetch_secs = delta_bytes as f64 * 8.0 / bandwidth_bps;
    let remaining = candidate.deadline.saturating_since(now).as_secs_f64();

    if fetch_secs * config.deadline_safety > remaining {
        // Too late to make it at the wanted level. Try a partial upgrade
        // one level up, otherwise give up.
        let mut want = candidate.want.down();
        while want > candidate.have {
            let bytes = sizes.upgrade_cost(scheme, candidate.have, want);
            if (bytes as f64 * 8.0 / bandwidth_bps) * config.deadline_safety <= remaining {
                return UpgradeDecision::UpgradeNow { delta_bytes: bytes };
            }
            want = want.down();
        }
        return UpgradeDecision::Skip;
    }

    // Not urgent yet? Defer to let the HMP settle ("upgrading too early
    // may lead to extra bandwidth waste").
    let urgent_window = fetch_secs * config.urgency_factor.max(1.0);
    if remaining > urgent_window {
        let revisit_at = candidate.deadline - SimDuration::from_secs_f64(urgent_window);
        // High-confidence cells skip the wait: the HMP has settled.
        if candidate.probability < 0.95 {
            return UpgradeDecision::Defer { revisit_at };
        }
    }
    UpgradeDecision::UpgradeNow { delta_bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sperke_geo::TileId;
    use sperke_video::ChunkTime;

    fn sizes() -> CellSizes {
        CellSizes::new(vec![100_000, 250_000, 600_000, 1_400_000], 0.10)
    }

    fn candidate(prob: f64, deadline_s: f64) -> UpgradeCandidate {
        UpgradeCandidate {
            cell: CellId::new(TileId(3), ChunkTime(5)),
            have: Quality(0),
            want: Quality(2),
            probability: prob,
            deadline: SimTime::from_secs_f64(deadline_s),
        }
    }

    const BW: f64 = 10e6; // 10 Mbps

    #[test]
    fn low_probability_skips() {
        let d = decide_upgrade(
            &candidate(0.2, 5.0),
            &sizes(),
            Scheme::svc_default(),
            SimTime::ZERO,
            BW,
            &UpgradeConfig::default(),
        );
        assert_eq!(d, UpgradeDecision::Skip);
    }

    #[test]
    fn confident_upgrade_with_time_defers() {
        // Plenty of time and 0.7 probability: wait for the HMP to settle.
        let d = decide_upgrade(
            &candidate(0.7, 10.0),
            &sizes(),
            Scheme::svc_default(),
            SimTime::ZERO,
            BW,
            &UpgradeConfig::default(),
        );
        match d {
            UpgradeDecision::Defer { revisit_at } => {
                assert!(revisit_at > SimTime::ZERO && revisit_at < SimTime::from_secs(10));
            }
            other => panic!("expected Defer, got {other:?}"),
        }
    }

    #[test]
    fn near_certain_upgrade_goes_now() {
        let d = decide_upgrade(
            &candidate(0.99, 10.0),
            &sizes(),
            Scheme::svc_default(),
            SimTime::ZERO,
            BW,
            &UpgradeConfig::default(),
        );
        match d {
            UpgradeDecision::UpgradeNow { delta_bytes } => {
                // SVC delta Q0->Q2: 660000 - 110000 = 550000.
                assert_eq!(delta_bytes, 550_000);
            }
            other => panic!("expected UpgradeNow, got {other:?}"),
        }
    }

    #[test]
    fn imminent_deadline_upgrades_now() {
        // ~0.44s of fetch, urgency window 0.88s, 0.8s remaining: must go now.
        let d = decide_upgrade(
            &candidate(0.8, 0.8),
            &sizes(),
            Scheme::svc_default(),
            SimTime::ZERO,
            BW,
            &UpgradeConfig::default(),
        );
        assert!(matches!(d, UpgradeDecision::UpgradeNow { .. }), "{d:?}");
    }

    #[test]
    fn hopeless_deadline_downgrades_the_ask() {
        // 0.08 s remaining: full Q0->Q2 delta (0.44 s) can't make it,
        // but Q0->Q1 (165 kB ≈ 0.13 s) can't either. Skip.
        let d = decide_upgrade(
            &candidate(0.9, 0.08),
            &sizes(),
            Scheme::svc_default(),
            SimTime::ZERO,
            BW,
            &UpgradeConfig::default(),
        );
        assert_eq!(d, UpgradeDecision::Skip);
        // With 0.3s remaining, the partial Q0->Q1 upgrade fits.
        let d = decide_upgrade(
            &candidate(0.9, 0.3),
            &sizes(),
            Scheme::svc_default(),
            SimTime::ZERO,
            BW,
            &UpgradeConfig::default(),
        );
        match d {
            UpgradeDecision::UpgradeNow { delta_bytes } => {
                assert_eq!(delta_bytes, 275_000 - 110_000, "one layer only");
            }
            other => panic!("expected partial upgrade, got {other:?}"),
        }
    }

    #[test]
    fn avc_upgrade_costs_more_than_svc() {
        let c = candidate(0.99, 10.0);
        let svc = decide_upgrade(
            &c,
            &sizes(),
            Scheme::svc_default(),
            SimTime::ZERO,
            BW,
            &UpgradeConfig::default(),
        );
        let avc = decide_upgrade(
            &c,
            &sizes(),
            Scheme::Avc,
            SimTime::ZERO,
            BW,
            &UpgradeConfig::default(),
        );
        let (
            UpgradeDecision::UpgradeNow { delta_bytes: s },
            UpgradeDecision::UpgradeNow { delta_bytes: a },
        ) = (svc, avc)
        else {
            panic!("expected both to upgrade: {svc:?} {avc:?}");
        };
        assert!(a > s, "AVC re-download {a} vs SVC delta {s}");
    }

    #[test]
    fn non_upgrade_requests_skip() {
        let mut c = candidate(0.9, 5.0);
        c.want = Quality(0);
        assert_eq!(
            decide_upgrade(
                &c,
                &sizes(),
                Scheme::svc_default(),
                SimTime::ZERO,
                BW,
                &UpgradeConfig::default()
            ),
            UpgradeDecision::Skip
        );
    }

    #[test]
    fn zero_bandwidth_skips() {
        assert_eq!(
            decide_upgrade(
                &candidate(0.9, 5.0),
                &sizes(),
                Scheme::svc_default(),
                SimTime::ZERO,
                0.0,
                &UpgradeConfig::default()
            ),
            UpgradeDecision::Skip
        );
    }
}
