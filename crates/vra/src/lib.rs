//! # sperke-vra — video rate adaptation for tiled 360° streaming
//!
//! The §3.1 subsystem, decomposed exactly as the paper does:
//!
//! 1. **Super chunks** ([`SuperChunk`]) reduce FoV-guided VRA to regular
//!    VRA when the HMP is perfect; the inner [`abr`] algorithms
//!    (rate-based / buffer-based / MPC, the §3.1.2 survey) choose their
//!    quality.
//! 2. **OOS selection** ([`oos::select_oos`]) spends the leftover budget
//!    on out-of-sight tiles, quality decaying with distance/probability.
//! 3. **Incremental upgrades** ([`upgrade::decide_upgrade`]) exploit SVC
//!    deltas when the HMP correction reveals buffered cells will be
//!    displayed — including the *upgrade-or-not* and *when-to-upgrade*
//!    decisions, and the hybrid SVC/AVC [`EncodingPolicy`].
//!
//! [`SperkeVra`] composes all three into a per-chunk [`FetchPlan`];
//! [`plan_fov_agnostic`] is the §2 baseline that fetches everything.

#![warn(missing_docs)]

pub mod abr;
pub mod knapsack;
pub mod oos;
pub mod policy;
pub mod sperke;
pub mod superchunk;
pub mod upgrade;

pub use abr::{Abr, AbrContext, BufferBased, ExactMpc, FixedQuality, Mpc, RateBased};
pub use knapsack::{expected_utility, select_stochastic, selection_cost, StochasticChoice};
pub use oos::{select_oos, OosChoice, OosConfig};
pub use policy::{
    AbrPolicy, AbrPolicyKind, ConsistencyAware, KnapsackQoe, MechanismTransition, PolicyInput,
    PolicyPlan, PolicyVra, QerPrecoded, SperkeSelector, TileAssignment, DEFAULT_MIN_PROBABILITY,
};
pub use sperke::{
    plan_fov_agnostic, upgrade_candidates, EncodingPolicy, FetchPlan, PlanInput, PlannedFetch,
    SelectionPolicy, SperkeConfig, SperkeVra,
};
pub use superchunk::SuperChunk;
pub use upgrade::{decide_upgrade, UpgradeCandidate, UpgradeConfig, UpgradeDecision};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use sperke_geo::Orientation;
    use sperke_hmp::{FusedForecaster, TileForecast};
    use sperke_sim::{SimDuration, SimTime};
    use sperke_video::{ChunkTime, Quality, VideoModelBuilder};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Plans never exceed the bandwidth budget (with 5% slack for
        /// rounding), for any gaze/bandwidth combination.
        #[test]
        fn plans_respect_budget(
            seed: u64,
            yaw_deg in -180.0f64..180.0,
            bw_mbps in 2.0f64..80.0,
            last_q in 0u8..4,
        ) {
            let video = VideoModelBuilder::new(seed)
                .duration(SimDuration::from_secs(10))
                .build();
            let history = vec![(SimTime::ZERO, Orientation::from_degrees(yaw_deg, 0.0, 0.0))];
            let fc = FusedForecaster::motion_only().forecast(
                video.grid(), &history, SimTime::ZERO,
                SimTime::from_secs(1), ChunkTime(1));
            let mut vra = SperkeVra::new(RateBased::default(), SperkeConfig::default());
            let plan = vra.plan(&PlanInput {
                video: &video,
                forecast: &fc,
                time: ChunkTime(1),
                now: SimTime::ZERO,
                buffer: SimDuration::from_secs(2),
                bandwidth_bps: Some(bw_mbps * 1e6),
                measured_bps: None,
                bandwidth_forecast: vec![],
                last_quality: Quality(last_q.min(3)),
            });
            let plan_bps = plan.total_bytes() as f64 * 8.0
                / video.chunk_duration().as_secs_f64();
            prop_assert!(plan_bps <= bw_mbps * 1e6 * 1.05,
                "plan {plan_bps:.0} vs budget {:.0}", bw_mbps * 1e6);
            // No duplicate cells in a plan.
            let mut cells: Vec<_> = plan.fetches.iter().map(|f| (f.chunk.tile, f.chunk.time)).collect();
            cells.sort();
            let before = cells.len();
            cells.dedup();
            prop_assert_eq!(before, cells.len(), "duplicate cell in plan");
        }

        /// OOS selection cost is monotone in the budget.
        #[test]
        fn oos_monotone_in_budget(seed: u64, budget_a in 0u64..4_000_000, budget_b in 0u64..4_000_000) {
            let video = VideoModelBuilder::new(seed)
                .duration(SimDuration::from_secs(10))
                .build();
            let fc = TileForecast::uniform(video.grid(), 0.4);
            let cost = |budget: u64| -> u64 {
                select_oos(&video, &fc, ChunkTime(0), &[], Quality(2),
                    sperke_video::Scheme::Avc, budget, &OosConfig::default())
                    .iter()
                    .map(|c| video.avc_bytes(sperke_video::ChunkId::new(c.quality, c.tile, ChunkTime(0))))
                    .sum()
            };
            let (lo, hi) = if budget_a <= budget_b { (budget_a, budget_b) } else { (budget_b, budget_a) };
            let c_lo = cost(lo);
            let c_hi = cost(hi);
            prop_assert!(c_lo <= lo, "cost exceeds budget");
            prop_assert!(c_hi <= hi, "cost exceeds budget");
            prop_assert!(c_lo <= c_hi, "more budget bought less");
        }

        /// The stochastic knapsack respects any budget and only selects
        /// tiles above the probability floor.
        #[test]
        fn knapsack_budget_and_floor(
            seed: u64,
            budget in 0u64..6_000_000,
            floor in 0.0f64..0.6,
            probs in proptest::collection::vec(0.0f64..1.0, 24),
        ) {
            let video = VideoModelBuilder::new(seed)
                .duration(SimDuration::from_secs(4))
                .build();
            let fc = TileForecast::new(probs);
            let choices = select_stochastic(
                &video, &fc, ChunkTime(0), budget, sperke_video::Scheme::Avc, floor);
            let cost: u64 = choices.iter()
                .map(|c| video.avc_bytes(sperke_video::ChunkId::new(c.quality, c.tile, ChunkTime(0))))
                .sum();
            prop_assert!(cost <= budget);
            for c in &choices {
                prop_assert!(fc.prob(c.tile) >= floor);
            }
            // No tile appears twice.
            let mut tiles: Vec<_> = choices.iter().map(|c| c.tile).collect();
            tiles.sort();
            let n = tiles.len();
            tiles.dedup();
            prop_assert_eq!(n, tiles.len());
        }

        /// decide_upgrade never proposes a delta that misses the deadline
        /// at the assumed bandwidth.
        #[test]
        fn upgrades_meet_deadlines(
            have in 0u8..3,
            want in 1u8..4,
            prob in 0.5f64..1.0,
            deadline_ms in 10u64..5000,
            bw_mbps in 1.0f64..50.0,
        ) {
            prop_assume!(want > have);
            let sizes = sperke_video::CellSizes::new(
                vec![100_000, 250_000, 600_000, 1_400_000], 0.1);
            let cand = UpgradeCandidate {
                cell: sperke_video::CellId::new(sperke_geo::TileId(0), ChunkTime(0)),
                have: Quality(have),
                want: Quality(want),
                probability: prob,
                deadline: SimTime::from_millis(deadline_ms),
            };
            let bw = bw_mbps * 1e6;
            let d = decide_upgrade(&cand, &sizes, sperke_video::Scheme::svc_default(),
                SimTime::ZERO, bw, &UpgradeConfig::default());
            if let UpgradeDecision::UpgradeNow { delta_bytes } = d {
                let fetch_secs = delta_bytes as f64 * 8.0 / bw;
                prop_assert!(fetch_secs <= deadline_ms as f64 / 1000.0 + 1e-9,
                    "proposed fetch {fetch_secs}s misses {deadline_ms}ms deadline");
            }
        }

        /// No policy in the suite ever exceeds the capacity budget
        /// (QER is exempt when even the cheapest indivisible precoded
        /// variant is over budget — a modelling necessity, asserted to
        /// be the only excuse).
        #[test]
        fn policies_respect_capacity_budget(
            seed: u64,
            budget in 50_000u64..20_000_000,
            probs in proptest::collection::vec(0.0f64..1.0, 24),
            conf in 0.0f64..1.0,
        ) {
            let video = VideoModelBuilder::new(seed)
                .duration(SimDuration::from_secs(4))
                .build();
            let fc = TileForecast::new(probs);
            let input = policy::PolicyInput {
                video: &video,
                forecast: &fc,
                confidence: conf,
                time: ChunkTime(0),
                buffer: SimDuration::from_secs(2),
                budget_bytes: budget,
                capacity_bps: Some(budget as f64 * 8.0),
                scheme: sperke_video::Scheme::Avc,
                min_probability: DEFAULT_MIN_PROBABILITY,
                prev: None,
            };
            for kind in AbrPolicyKind::all() {
                let plan = kind.decide(&input);
                let cost = plan.cost_bytes(&video, ChunkTime(0), sperke_video::Scheme::Avc);
                if matches!(kind, AbrPolicyKind::Qer { .. }) && cost > budget {
                    // Indivisible precoded stream: only the floor
                    // variant (all tiles at the base pair) may overrun.
                    let min_q: u8 = plan.assignments.iter().map(|a| a.quality.0).max().unwrap_or(0);
                    prop_assert_eq!(min_q, 0, "over-budget QER above the floor variant");
                    continue;
                }
                prop_assert!(cost <= budget,
                    "{} spent {cost} of {budget}", kind.name());
            }
        }

        /// Mechanism transitioning is monotone in confidence: a higher
        /// confidence never widens the delivered tile set.
        #[test]
        fn transition_monotone_in_confidence(
            seed: u64,
            budget in 50_000u64..20_000_000,
            probs in proptest::collection::vec(0.0f64..1.0, 24),
            conf_a in 0.0f64..1.0,
            conf_b in 0.0f64..1.0,
        ) {
            let video = VideoModelBuilder::new(seed)
                .duration(SimDuration::from_secs(4))
                .build();
            let fc = TileForecast::new(probs);
            let policy = MechanismTransition::default();
            let (lo, hi) = if conf_a <= conf_b { (conf_a, conf_b) } else { (conf_b, conf_a) };
            let plan_at = |conf: f64| {
                policy.decide(&policy::PolicyInput {
                    video: &video,
                    forecast: &fc,
                    confidence: conf,
                    time: ChunkTime(0),
                    buffer: SimDuration::from_secs(2),
                    budget_bytes: budget,
                    capacity_bps: None,
                    scheme: sperke_video::Scheme::Avc,
                    min_probability: DEFAULT_MIN_PROBABILITY,
                    prev: None,
                })
            };
            let wide = plan_at(lo);
            let narrow = plan_at(hi);
            let wide_tiles: std::collections::BTreeSet<_> =
                wide.assignments.iter().map(|a| a.tile).collect();
            for a in &narrow.assignments {
                prop_assert!(wide_tiles.contains(&a.tile),
                    "tile {:?} delivered at confidence {hi} but not {lo}", a.tile);
            }
        }

        /// Consistency-aware selection never oscillates more than the
        /// plain knapsack on the same forecast trace.
        #[test]
        fn consistency_oscillates_no_more_than_knapsack(
            seed: u64,
            budgets in proptest::collection::vec(50_000u64..6_000_000, 4..8),
            probs in proptest::collection::vec(
                proptest::collection::vec(0.0f64..1.0, 24), 4..8),
        ) {
            let video = VideoModelBuilder::new(seed)
                .duration(SimDuration::from_secs(10))
                .build();
            let steps = budgets.len().min(probs.len());
            let tiles = 24usize;
            let policy = ConsistencyAware { max_up_step: 1 };
            let mut prev_k: Option<Vec<i8>> = None;
            let mut prev_c: Option<Vec<i8>> = None;
            let mut osc_k = 0i64;
            let mut osc_c = 0i64;
            for step in 0..steps {
                let fc = TileForecast::new(probs[step].clone());
                let mut input = policy::PolicyInput {
                    video: &video,
                    forecast: &fc,
                    confidence: fc.confidence(),
                    time: ChunkTime(step as u32),
                    buffer: SimDuration::from_secs(2),
                    budget_bytes: budgets[step],
                    capacity_bps: None,
                    scheme: sperke_video::Scheme::Avc,
                    min_probability: DEFAULT_MIN_PROBABILITY,
                    prev: None,
                };
                let k = AbrPolicyKind::Knapsack.decide(&input).levels(tiles);
                input.prev = prev_c.as_deref();
                let c = policy.decide(&input).levels(tiles);
                for t in 0..tiles {
                    if let Some(pk) = &prev_k {
                        osc_k += (k[t] as i64 - pk[t] as i64).abs();
                    }
                    if let Some(pc) = &prev_c {
                        osc_c += (c[t] as i64 - pc[t] as i64).abs();
                    }
                }
                prev_k = Some(k);
                prev_c = Some(c);
            }
            prop_assert!(osc_c <= osc_k,
                "consistency oscillated {osc_c} > knapsack {osc_k}");
        }

        /// With its distinguishing knob disabled, every rival collapses
        /// to the knapsack core — i.e. Sperke's stochastic selector —
        /// byte for byte.
        #[test]
        fn degenerate_policies_collapse_to_sperke_bytes(
            seed: u64,
            budget in 50_000u64..20_000_000,
            probs in proptest::collection::vec(0.0f64..1.0, 24),
            conf in 0.0f64..1.0,
        ) {
            let video = VideoModelBuilder::new(seed)
                .duration(SimDuration::from_secs(4))
                .build();
            let fc = TileForecast::new(probs);
            let prev = vec![-1i8; 24];
            let input = policy::PolicyInput {
                video: &video,
                forecast: &fc,
                confidence: conf,
                time: ChunkTime(0),
                buffer: SimDuration::from_secs(2),
                budget_bytes: budget,
                capacity_bps: Some(budget as f64 * 8.0),
                scheme: sperke_video::Scheme::Avc,
                min_probability: DEFAULT_MIN_PROBABILITY,
                prev: Some(&prev),
            };
            let baseline = AbrPolicyKind::Sperke.decide(&input);
            let degenerate = [
                AbrPolicyKind::Knapsack,
                AbrPolicyKind::Transition {
                    full_below: 0.0,
                    fov_only_above: 1.1,
                    fov_floor: 0.5,
                },
                AbrPolicyKind::Qer { variants: 0, emphasis_drop: 2 },
                AbrPolicyKind::Consistency { max_up_step: 0 },
            ];
            for kind in degenerate {
                prop_assert_eq!(&kind.decide(&input), &baseline,
                    "{} with knob off diverged from Sperke", kind.name());
            }
        }
    }
}
