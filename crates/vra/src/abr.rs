//! Baseline adaptive-bitrate algorithms, specialized to super chunks.
//!
//! §3.1.2 surveys the VRA families a 360° system could customize:
//! throughput-based (FESTIVE \[29\]), buffer-based (BBA \[28\]) and
//! control-theoretic (MPC \[44\]). Each is implemented over the abstract
//! [`AbrContext`] so the same algorithms drive super chunks in the
//! player and full panoramas in the FoV-agnostic baseline.

use serde::{Deserialize, Serialize};
use sperke_sim::SimDuration;
use sperke_video::{Ladder, Quality};

/// Everything an ABR algorithm may look at when choosing a quality.
#[derive(Debug, Clone)]
pub struct AbrContext<'a> {
    /// The bitrate ladder.
    pub ladder: &'a Ladder,
    /// Bitrate (bits/second) of the fetch unit at each quality level —
    /// for super chunks this accounts for how many tiles are in view.
    pub unit_bitrate: Vec<f64>,
    /// Current playback buffer level.
    pub buffer: SimDuration,
    /// Conservative bandwidth estimate, bits/second (`None` on startup).
    pub bandwidth_bps: Option<f64>,
    /// Measured bottleneck-bandwidth estimate from the transport's BBR
    /// probe (bits/second), when capacity probing is on. Takes
    /// precedence over the declared `bandwidth_bps` for the
    /// control-theoretic policies; `None` (probing off) preserves the
    /// declared-capacity behaviour bit-for-bit.
    pub measured_bps: Option<f64>,
    /// Bandwidth forecast for the next chunks (MPC lookahead); falls
    /// back to `bandwidth_bps` when empty.
    pub bandwidth_forecast: Vec<f64>,
    /// Quality of the previously fetched unit.
    pub last_quality: Quality,
    /// Chunk duration.
    pub chunk_duration: SimDuration,
}

impl AbrContext<'_> {
    /// The unit's bitrate at quality `q`.
    pub fn rate(&self, q: Quality) -> f64 {
        self.unit_bitrate[q.index()]
    }

    /// The capacity signal the lookahead policies plan against: the
    /// measured BBR estimate when the probe is live, else the declared
    /// estimate. `None` only before any estimate exists.
    pub fn planning_bps(&self) -> Option<f64> {
        self.measured_bps.or(self.bandwidth_bps)
    }

    /// Highest quality whose unit bitrate is at most `budget`.
    fn highest_within(&self, budget: f64) -> Quality {
        let mut best = Quality::LOWEST;
        for q in self.ladder.qualities() {
            if self.rate(q) <= budget {
                best = q;
            }
        }
        best
    }
}

/// An adaptive-bitrate policy.
pub trait Abr {
    /// Display name for result tables.
    fn name(&self) -> &'static str;

    /// Choose the quality of the next fetch unit.
    fn choose(&mut self, ctx: &AbrContext<'_>) -> Quality;
}

/// A fixed-quality "ABR" for controlled experiments (e.g. measuring
/// bandwidth at matched quality, experiment E4). Clamped to the ladder.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FixedQuality(pub Quality);

impl Abr for FixedQuality {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn choose(&mut self, ctx: &AbrContext<'_>) -> Quality {
        if ctx.ladder.contains(self.0) {
            self.0
        } else {
            ctx.ladder.top()
        }
    }
}

/// Throughput-based ABR in the FESTIVE style: harmonic-mean estimate
/// (supplied by the caller), a safety margin, and switch damping (only
/// step up after `patience` consecutive opportunities, never jump more
/// than one level at a time).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateBased {
    /// Fraction of the estimate considered spendable.
    pub safety: f64,
    /// Consecutive up-opportunities required before stepping up.
    pub patience: u32,
    up_streak: u32,
}

impl Default for RateBased {
    fn default() -> Self {
        RateBased {
            safety: 0.85,
            patience: 2,
            up_streak: 0,
        }
    }
}

impl Abr for RateBased {
    fn name(&self) -> &'static str {
        "rate-based"
    }

    fn choose(&mut self, ctx: &AbrContext<'_>) -> Quality {
        let Some(bw) = ctx.bandwidth_bps else {
            return Quality::LOWEST; // cautious start
        };
        let affordable = ctx.highest_within(bw * self.safety);
        let last = ctx.last_quality;
        if affordable > last {
            self.up_streak += 1;
            if self.up_streak >= self.patience {
                self.up_streak = 0;
                last.up()
            } else {
                last
            }
        } else {
            self.up_streak = 0;
            affordable
        }
    }
}

/// Buffer-based ABR in the BBA style: a linear map from buffer occupancy
/// to quality between a reservoir and a cushion. §3.1.2 warns this may
/// interact poorly with FoV-guided streaming because the HMP window
/// limits achievable buffer depth — visible in experiment E10.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BufferBased {
    /// Below this buffer level, always fetch the lowest quality.
    pub reservoir: SimDuration,
    /// At/above this level, fetch the highest quality.
    pub cushion: SimDuration,
}

impl Default for BufferBased {
    fn default() -> Self {
        BufferBased {
            reservoir: SimDuration::from_secs(5),
            cushion: SimDuration::from_secs(20),
        }
    }
}

impl Abr for BufferBased {
    fn name(&self) -> &'static str {
        "buffer-based"
    }

    fn choose(&mut self, ctx: &AbrContext<'_>) -> Quality {
        let b = ctx.buffer.as_secs_f64();
        let r = self.reservoir.as_secs_f64();
        let c = self.cushion.as_secs_f64();
        if b <= r {
            return Quality::LOWEST;
        }
        let top = ctx.ladder.top().0 as f64;
        if b >= c {
            return ctx.ladder.top();
        }
        Quality(((b - r) / (c - r) * top).floor() as u8)
    }
}

/// Control-theoretic ABR in the (fast)MPC style: over a lookahead of N
/// chunks, evaluate each candidate (constant) quality against the
/// bandwidth forecast and pick the one maximizing
/// `utility − λ·|switch| − μ·predicted_stall`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mpc {
    /// Lookahead horizon in chunks.
    pub lookahead: usize,
    /// Switching penalty weight (per level of change).
    pub switch_penalty: f64,
    /// Stall penalty weight (per second of predicted rebuffering).
    pub stall_penalty: f64,
}

impl Default for Mpc {
    fn default() -> Self {
        Mpc {
            lookahead: 5,
            switch_penalty: 0.5,
            stall_penalty: 8.0,
        }
    }
}

impl Abr for Mpc {
    fn name(&self) -> &'static str {
        "mpc"
    }

    fn choose(&mut self, ctx: &AbrContext<'_>) -> Quality {
        // Plan against the measured BBR estimate when probing is live;
        // the declared estimate alone can be stale or optimistic.
        let Some(bw0) = ctx.planning_bps() else {
            return Quality::LOWEST;
        };
        let horizon = self.lookahead.max(1);
        let forecast: Vec<f64> = (0..horizon)
            .map(|i| *ctx.bandwidth_forecast.get(i).unwrap_or(&bw0))
            .collect();
        let chunk_secs = ctx.chunk_duration.as_secs_f64();

        let mut best = (f64::NEG_INFINITY, Quality::LOWEST);
        for q in ctx.ladder.qualities() {
            // Simulate downloading `horizon` chunks at quality q.
            let mut buffer = ctx.buffer.as_secs_f64();
            let mut stall = 0.0;
            for &bw in &forecast {
                let dl = ctx.rate(q) * chunk_secs / bw.max(1.0); // seconds to download
                if dl > buffer {
                    stall += dl - buffer;
                    buffer = 0.0;
                } else {
                    buffer -= dl;
                }
                buffer += chunk_secs;
            }
            let utility = ctx.ladder.utility(q) * horizon as f64;
            let switch = (q.0 as i32 - ctx.last_quality.0 as i32).abs() as f64;
            let score = utility - self.switch_penalty * switch - self.stall_penalty * stall;
            if score > best.0 {
                best = (score, q);
            }
        }
        best.1
    }
}

/// Exact MPC: dynamic programming over *per-chunk* quality decisions in
/// the lookahead window (the fast [`Mpc`] restricts itself to constant
/// quality). State = (chunk index, quantized buffer, previous quality);
/// the table is small enough to solve exactly every decision epoch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExactMpc {
    /// Lookahead horizon in chunks.
    pub lookahead: usize,
    /// Switching penalty per level of change.
    pub switch_penalty: f64,
    /// Stall penalty per second of predicted rebuffering.
    pub stall_penalty: f64,
    /// Buffer quantization step, seconds.
    pub buffer_step: f64,
    /// Buffer cap, seconds (states above are clamped).
    pub buffer_cap: f64,
}

impl Default for ExactMpc {
    fn default() -> Self {
        ExactMpc {
            lookahead: 5,
            switch_penalty: 0.5,
            stall_penalty: 8.0,
            buffer_step: 0.25,
            buffer_cap: 12.0,
        }
    }
}

impl ExactMpc {
    fn bucket(&self, buffer_s: f64) -> usize {
        ((buffer_s.clamp(0.0, self.buffer_cap)) / self.buffer_step).round() as usize
    }

    fn unbucket(&self, b: usize) -> f64 {
        b as f64 * self.buffer_step
    }
}

impl Abr for ExactMpc {
    fn name(&self) -> &'static str {
        "exact-mpc"
    }

    fn choose(&mut self, ctx: &AbrContext<'_>) -> Quality {
        // Same capacity source as [`Mpc`]: measured-over-declared.
        let Some(bw0) = ctx.planning_bps() else {
            return Quality::LOWEST;
        };
        let horizon = self.lookahead.max(1);
        let forecast: Vec<f64> = (0..horizon)
            .map(|i| {
                ctx.bandwidth_forecast
                    .get(i)
                    .copied()
                    .unwrap_or(bw0)
                    .max(1.0)
            })
            .collect();
        let chunk_secs = ctx.chunk_duration.as_secs_f64();
        let levels = ctx.ladder.levels();
        let buckets = self.bucket(self.buffer_cap) + 1;

        // value[b][last_q] = best total reward from the current step on.
        let mut value = vec![vec![0.0f64; levels]; buckets];
        let mut first_choice = vec![vec![Quality::LOWEST; levels]; buckets];
        for step in (0..horizon).rev() {
            let bw = forecast[step];
            let mut next = vec![vec![f64::NEG_INFINITY; levels]; buckets];
            let mut choice = vec![vec![Quality::LOWEST; levels]; buckets];
            for b in 0..buckets {
                let buffer = self.unbucket(b);
                for last in 0..levels {
                    for q in ctx.ladder.qualities() {
                        let dl = ctx.rate(q) * chunk_secs / bw;
                        let stall = (dl - buffer).max(0.0);
                        let after = (buffer - dl).max(0.0) + chunk_secs;
                        let reward = ctx.ladder.utility(q)
                            - self.switch_penalty * (q.0 as i32 - last as i32).abs() as f64
                            - self.stall_penalty * stall;
                        let future = value[self.bucket(after)][q.index()];
                        let total = reward + future;
                        if total > next[b][last] {
                            next[b][last] = total;
                            choice[b][last] = q;
                        }
                    }
                }
            }
            value = next;
            first_choice = choice;
        }
        let b = self.bucket(ctx.buffer.as_secs_f64());
        first_choice[b][ctx.last_quality.index().min(levels - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(
        ladder: &'a Ladder,
        buffer_s: f64,
        bw: Option<f64>,
        last: Quality,
    ) -> AbrContext<'a> {
        AbrContext {
            ladder,
            unit_bitrate: ladder.qualities().map(|q| ladder.bitrate(q)).collect(),
            buffer: SimDuration::from_secs_f64(buffer_s),
            bandwidth_bps: bw,
            measured_bps: None,
            bandwidth_forecast: vec![],
            last_quality: last,
            chunk_duration: SimDuration::from_secs(1),
        }
    }

    #[test]
    fn rate_based_starts_low_without_estimate() {
        let ladder = Ladder::vod_default();
        let mut abr = RateBased::default();
        assert_eq!(
            abr.choose(&ctx(&ladder, 10.0, None, Quality(2))),
            Quality::LOWEST
        );
    }

    #[test]
    fn rate_based_steps_up_with_patience() {
        let ladder = Ladder::vod_default(); // 4, 8, 16, 32 Mbps
        let mut abr = RateBased::default(); // patience 2
        let c = ctx(&ladder, 10.0, Some(40e6), Quality(1));
        assert_eq!(abr.choose(&c), Quality(1), "first opportunity: hold");
        assert_eq!(
            abr.choose(&c),
            Quality(2),
            "second opportunity: one step up"
        );
    }

    #[test]
    fn rate_based_drops_immediately() {
        let ladder = Ladder::vod_default();
        let mut abr = RateBased::default();
        let c = ctx(&ladder, 10.0, Some(5e6), Quality(3));
        assert_eq!(
            abr.choose(&c),
            Quality(0),
            "5 Mbps * 0.85 affords only 4 Mbps"
        );
    }

    #[test]
    fn buffer_based_regions() {
        let ladder = Ladder::vod_default();
        let mut abr = BufferBased::default(); // reservoir 5, cushion 20
        assert_eq!(
            abr.choose(&ctx(&ladder, 2.0, Some(99e6), Quality(0))),
            Quality(0)
        );
        assert_eq!(
            abr.choose(&ctx(&ladder, 25.0, Some(1.0), Quality(0))),
            Quality(3)
        );
        let mid = abr.choose(&ctx(&ladder, 12.5, Some(1.0), Quality(0)));
        assert!(mid > Quality(0) && mid < Quality(3));
    }

    #[test]
    fn buffer_based_is_monotone_in_buffer() {
        let ladder = Ladder::vod_default();
        let mut abr = BufferBased::default();
        let mut prev = Quality(0);
        for b in [0.0, 6.0, 10.0, 14.0, 18.0, 22.0] {
            let q = abr.choose(&ctx(&ladder, b, None, Quality(0)));
            assert!(q >= prev, "quality decreased as buffer grew");
            prev = q;
        }
    }

    #[test]
    fn mpc_picks_high_quality_with_ample_bandwidth() {
        let ladder = Ladder::vod_default();
        let mut abr = Mpc::default();
        let q = abr.choose(&ctx(&ladder, 10.0, Some(100e6), Quality(3)));
        assert_eq!(q, ladder.top());
    }

    #[test]
    fn mpc_avoids_stalls_with_thin_buffer() {
        let ladder = Ladder::vod_default();
        let mut abr = Mpc::default();
        // 6 Mbps: Q1 (8 Mbps) would take 1.33s/chunk, draining a 1s buffer.
        let q = abr.choose(&ctx(&ladder, 1.0, Some(6e6), Quality(0)));
        assert_eq!(q, Quality(0), "stall penalty dominates");
    }

    #[test]
    fn mpc_uses_forecast_dips() {
        let ladder = Ladder::vod_default();
        let mut abr = Mpc::default();
        let mut c = ctx(&ladder, 4.0, Some(40e6), Quality(2));
        // Current estimate is generous but the forecast collapses.
        c.bandwidth_forecast = vec![40e6, 3e6, 3e6, 3e6, 3e6];
        let q = abr.choose(&c);
        assert!(q < Quality(2), "lookahead sees the dip, chose {q}");
    }

    #[test]
    fn exact_mpc_matches_fast_mpc_on_easy_cases() {
        let ladder = Ladder::vod_default();
        let mut exact = ExactMpc::default();
        let mut fast = Mpc::default();
        // Ample bandwidth: both pick the top.
        let rich = ctx(&ladder, 10.0, Some(100e6), Quality(3));
        assert_eq!(exact.choose(&rich), fast.choose(&rich));
        // Starved: both pick the base.
        let poor = ctx(&ladder, 1.0, Some(3e6), Quality(0));
        assert_eq!(exact.choose(&poor), fast.choose(&poor));
    }

    #[test]
    fn exact_mpc_rides_out_a_short_dip() {
        // A one-chunk bandwidth dip: constant-quality MPC must commit to
        // a low level for the whole horizon, but per-chunk DP can keep
        // quality high and absorb the dip with buffer.
        let ladder = Ladder::vod_default();
        let mut exact = ExactMpc::default();
        let mut fast = Mpc::default();
        let mut c = ctx(&ladder, 8.0, Some(20e6), Quality(2));
        c.bandwidth_forecast = vec![20e6, 4e6, 20e6, 20e6, 20e6];
        let e = exact.choose(&c);
        let f = fast.choose(&c);
        assert!(
            e >= f,
            "per-chunk planning ({e}) must not be more timid than constant-quality ({f})"
        );
        assert!(
            e >= Quality(2),
            "8 s of buffer absorbs a one-chunk dip, got {e}"
        );
    }

    #[test]
    fn exact_mpc_conservative_without_estimate() {
        let ladder = Ladder::vod_default();
        assert_eq!(
            ExactMpc::default().choose(&ctx(&ladder, 5.0, None, Quality(2))),
            Quality::LOWEST
        );
    }

    #[test]
    fn mpc_trusts_measured_bbr_estimate_over_declared() {
        // Regression: the declared estimate says the link is generous,
        // but the BBR probe has measured a much thinner bottleneck. Both
        // MPC variants must plan against the measurement and back off;
        // ignoring it (the pre-fix behaviour) picks the top rung.
        let ladder = Ladder::vod_default(); // 4/8/16/32 Mbps
        let mut declared_only = ctx(&ladder, 2.0, Some(100e6), Quality(3));
        let mut probed = declared_only.clone();
        probed.measured_bps = Some(5e6);

        for (name, q_declared, q_probed) in [
            (
                "mpc",
                Mpc::default().choose(&declared_only),
                Mpc::default().choose(&probed),
            ),
            (
                "exact-mpc",
                ExactMpc::default().choose(&declared_only),
                ExactMpc::default().choose(&probed),
            ),
        ] {
            assert_eq!(q_declared, ladder.top(), "{name}: generous declared");
            assert!(
                q_probed < q_declared,
                "{name}: measured 5 Mbps must pull quality below the top, got {q_probed}"
            );
        }

        // With probing off (None) nothing changes: byte-for-byte the
        // declared-capacity decision.
        declared_only.measured_bps = None;
        assert_eq!(Mpc::default().choose(&declared_only), ladder.top());
    }

    #[test]
    fn mpc_switch_penalty_damps_oscillation() {
        let ladder = Ladder::vod_default();
        let mut eager = Mpc {
            switch_penalty: 0.0,
            ..Default::default()
        };
        let mut damped = Mpc {
            switch_penalty: 10.0,
            ..Default::default()
        };
        // Bandwidth affords exactly one level above the last quality.
        let c = ctx(&ladder, 15.0, Some(18e6), Quality(1));
        let q_eager = eager.choose(&c);
        let q_damped = damped.choose(&c);
        assert!(q_eager > q_damped, "heavy switch penalty holds the level");
        assert_eq!(q_damped, Quality(1));
    }
}
