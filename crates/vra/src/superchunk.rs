//! Super chunks: the minimum tile set covering a (predicted) FoV.
//!
//! §3.1.2, part one: "we can generate a sequence of super chunks where
//! each super chunk consists of the minimum number of chunks that fully
//! cover the corresponding FoV ... all chunks within a super chunk will
//! have the same quality (otherwise different subareas in a FoV will
//! have different qualities, thus worsening the QoE)".

use serde::{Deserialize, Serialize};
use sperke_geo::{TileGrid, TileId, Viewport, VisibilityCache};
use sperke_hmp::TileForecast;
use sperke_video::{ChunkTime, Quality, Scheme, VideoModel};

/// The tile set that must share one quality level for a chunk time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuperChunk {
    /// The chunk time covered.
    pub time: ChunkTime,
    /// Tiles inside the (predicted) FoV, sorted by id.
    pub tiles: Vec<TileId>,
}

impl SuperChunk {
    /// Build from a known viewport (the perfect-HMP case of §3.1.2
    /// part one).
    pub fn from_viewport(grid: &TileGrid, viewport: &Viewport, time: ChunkTime) -> SuperChunk {
        SuperChunk {
            time,
            tiles: viewport.visible_tile_set(grid),
        }
    }

    /// [`SuperChunk::from_viewport`] through a visibility memo —
    /// identical result, recomputed only on a cache miss. For callers
    /// that build super chunks per chunk time from recurring gazes.
    pub fn from_viewport_cached(
        grid: &TileGrid,
        viewport: &Viewport,
        time: ChunkTime,
        vis: &VisibilityCache,
    ) -> SuperChunk {
        SuperChunk {
            time,
            tiles: vis.visible_tile_set(viewport, grid),
        }
    }

    /// Build from a tile forecast: tiles whose on-screen probability is
    /// at least `threshold` **relative to the most probable tile**, so
    /// the FoV set survives any uniform rescaling of the forecast (e.g.
    /// by prior blending). Guarantees at least one tile.
    pub fn from_forecast(forecast: &TileForecast, time: ChunkTime, threshold: f64) -> SuperChunk {
        let max_p = forecast
            .ranked()
            .first()
            .map(|&(_, p)| p)
            .unwrap_or(0.0)
            .max(1e-9);
        let mut tiles = forecast.above(threshold * max_p);
        if tiles.is_empty() {
            tiles = forecast.top_k(1);
        }
        tiles.sort();
        SuperChunk { time, tiles }
    }

    /// Number of tiles.
    pub fn len(&self) -> usize {
        self.tiles.len()
    }

    /// True when empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }

    /// Whether a tile belongs to this super chunk.
    pub fn contains(&self, tile: TileId) -> bool {
        self.tiles.binary_search(&tile).is_ok()
    }

    /// Total bytes to fetch the super chunk at quality `q`.
    pub fn bytes_at(&self, video: &VideoModel, q: Quality, scheme: Scheme) -> u64 {
        self.tiles
            .iter()
            .map(|&tile| video.chunk_bytes(sperke_video::ChunkId::new(q, tile, self.time), scheme))
            .sum()
    }

    /// The equivalent bitrate (bits/second) of the super chunk at `q`.
    pub fn bitrate_at(&self, video: &VideoModel, q: Quality, scheme: Scheme) -> f64 {
        self.bytes_at(video, q, scheme) as f64 * 8.0 / video.chunk_duration().as_secs_f64()
    }

    /// The highest quality whose super-chunk bitrate fits `budget_bps`;
    /// the lowest quality if none fit.
    pub fn highest_quality_within(
        &self,
        video: &VideoModel,
        scheme: Scheme,
        budget_bps: f64,
    ) -> Quality {
        let mut best = Quality::LOWEST;
        for q in video.ladder().qualities() {
            if self.bitrate_at(video, q, scheme) <= budget_bps {
                best = q;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sperke_geo::Orientation;
    use sperke_hmp::FusedForecaster;
    use sperke_sim::{SimDuration, SimTime};
    use sperke_video::VideoModelBuilder;

    fn video() -> VideoModel {
        VideoModelBuilder::new(3)
            .duration(SimDuration::from_secs(10))
            .build()
    }

    #[test]
    fn viewport_superchunk_is_sorted_and_partial() {
        let v = video();
        let vp = Viewport::headset(Orientation::FRONT);
        let sc = SuperChunk::from_viewport(v.grid(), &vp, ChunkTime(0));
        assert!(!sc.is_empty());
        assert!(
            sc.len() < v.grid().tile_count(),
            "FoV must not cover everything"
        );
        assert!(sc.tiles.windows(2).all(|w| w[0] < w[1]));
        assert!(sc.contains(sc.tiles[0]));
    }

    #[test]
    fn forecast_superchunk_threshold() {
        let grid = sperke_geo::TileGrid::new(4, 6);
        let history = vec![(SimTime::ZERO, Orientation::FRONT)];
        let fc = FusedForecaster::motion_only().forecast(
            &grid,
            &history,
            SimTime::ZERO,
            SimTime::from_millis(500),
            ChunkTime(0),
        );
        let tight = SuperChunk::from_forecast(&fc, ChunkTime(0), 0.9);
        let loose = SuperChunk::from_forecast(&fc, ChunkTime(0), 0.2);
        assert!(tight.len() <= loose.len());
        for t in &tight.tiles {
            assert!(loose.contains(*t));
        }
    }

    #[test]
    fn forecast_superchunk_never_empty() {
        let grid = sperke_geo::TileGrid::new(4, 6);
        // A uniform forecast (total ignorance): the relative threshold
        // admits every tile — "OOS chunks may spread to the entire
        // panoramic scene" in the fully random case.
        let fc = TileForecast::uniform(&grid, 0.001);
        let sc = SuperChunk::from_forecast(&fc, ChunkTime(0), 0.99);
        assert_eq!(sc.len(), grid.tile_count());
        // A degenerate all-zero forecast still yields one tile.
        let zero = TileForecast::new(vec![0.0; grid.tile_count()]);
        assert_eq!(SuperChunk::from_forecast(&zero, ChunkTime(0), 0.9).len(), 1);
    }

    #[test]
    fn bytes_scale_with_quality() {
        let v = video();
        let vp = Viewport::headset(Orientation::FRONT);
        let sc = SuperChunk::from_viewport(v.grid(), &vp, ChunkTime(1));
        let lo = sc.bytes_at(&v, Quality(0), Scheme::Avc);
        let hi = sc.bytes_at(&v, Quality(3), Scheme::Avc);
        assert!(hi > lo * 4, "ladder spans 8x in bitrate");
    }

    #[test]
    fn highest_quality_within_budget() {
        let v = video();
        let vp = Viewport::headset(Orientation::FRONT);
        let sc = SuperChunk::from_viewport(v.grid(), &vp, ChunkTime(0));
        let top_rate = sc.bitrate_at(&v, v.ladder().top(), Scheme::Avc);
        assert_eq!(
            sc.highest_quality_within(&v, Scheme::Avc, top_rate * 1.01),
            v.ladder().top()
        );
        assert_eq!(
            sc.highest_quality_within(&v, Scheme::Avc, 1.0),
            Quality::LOWEST,
            "degenerate budget falls back to base"
        );
    }

    #[test]
    fn superchunk_cheaper_than_panorama() {
        // The essence of FoV-guided streaming: the super chunk is a
        // fraction of the full panorama.
        let v = video();
        let vp = Viewport::headset(Orientation::FRONT);
        let sc = SuperChunk::from_viewport(v.grid(), &vp, ChunkTime(0));
        let q = Quality(2);
        let sc_bytes = sc.bytes_at(&v, q, Scheme::Avc);
        let pano = v.panorama_bytes(q, ChunkTime(0), Scheme::Avc);
        assert!(
            (sc_bytes as f64) < 0.7 * pano as f64,
            "super chunk {sc_bytes} should be well under panorama {pano}"
        );
    }
}
