//! Out-of-sight (OOS) chunk selection (§3.1.2, part two).
//!
//! "The player needs to fetch more tiles surrounding the predicted FoV
//! area X. Such tiles are called out-of-sight tiles ... To save
//! bandwidth, OOS tiles are downloaded in lower qualities; the further
//! away they are from X, the lower their qualities." Selection depends
//! on (1) the bandwidth budget, (2) the HMP accuracy — the lower the
//! accuracy, the more OOS chunks at higher qualities — and (3)
//! data-driven probabilities from §3.2, which arrive here already fused
//! into the [`TileForecast`].

use serde::{Deserialize, Serialize};
use sperke_geo::TileId;
use sperke_hmp::TileForecast;
use sperke_video::{ChunkId, ChunkTime, Quality, Scheme, VideoModel};

/// Tuning for OOS selection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OosConfig {
    /// Ignore tiles whose on-screen probability is below this.
    pub min_probability: f64,
    /// The highest quality an OOS tile may take, as levels below the FoV
    /// quality (1 = at most one level below).
    pub max_levels_below_fov: u8,
    /// When the HMP is known to be less accurate, scale probabilities up
    /// so more tiles qualify (1.0 = trust the forecast as-is).
    pub accuracy_compensation: f64,
}

impl Default for OosConfig {
    fn default() -> Self {
        OosConfig {
            min_probability: 0.05,
            max_levels_below_fov: 1,
            accuracy_compensation: 1.0,
        }
    }
}

/// One selected OOS fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OosChoice {
    /// The tile to fetch.
    pub tile: TileId,
    /// The quality to fetch it at (below the FoV quality).
    pub quality: Quality,
}

/// Select OOS tiles and qualities for chunk `time`.
///
/// * `fov_tiles` — the super chunk's tiles (already being fetched at
///   `fov_quality`); never selected again here.
/// * `budget_bytes` — bytes available for OOS after the FoV fetch.
///
/// Returns choices ordered by descending probability; the total cost
/// never exceeds the budget (tiles are demoted, then dropped, lowest
/// probability first).
#[allow(clippy::too_many_arguments)]
pub fn select_oos(
    video: &VideoModel,
    forecast: &TileForecast,
    time: ChunkTime,
    fov_tiles: &[TileId],
    fov_quality: Quality,
    scheme: Scheme,
    budget_bytes: u64,
    config: &OosConfig,
) -> Vec<OosChoice> {
    if fov_quality == Quality::LOWEST {
        // No quality below the FoV level exists; OOS fetching at the
        // same level would double-spend a budget that rate adaptation
        // already judged tight.
        return Vec::new();
    }
    // OOS qualities live in the band [floor, ceiling], strictly below
    // the FoV quality.
    let ceiling = Quality(fov_quality.0 - 1);
    let floor = Quality(
        fov_quality
            .0
            .saturating_sub(config.max_levels_below_fov.max(1)),
    );

    // Candidate tiles: not in FoV, probability above threshold.
    let mut candidates: Vec<(TileId, f64)> = forecast
        .ranked()
        .into_iter()
        .filter(|(tile, _)| !fov_tiles.contains(tile))
        .map(|(tile, p)| (tile, (p * config.accuracy_compensation).min(1.0)))
        .filter(|&(_, p)| p >= config.min_probability)
        .collect();
    candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN").then(a.0.cmp(&b.0)));

    // Map probability onto the [floor, ceiling] quality band: the more
    // likely the tile, the closer to the FoV quality.
    let mut choices: Vec<OosChoice> = candidates
        .iter()
        .map(|&(tile, p)| {
            let span = (ceiling.0 - floor.0) as f64;
            let q = floor.0 + (p * (span + 0.999)).floor() as u8;
            OosChoice {
                tile,
                quality: Quality(q.min(ceiling.0)),
            }
        })
        .collect();

    // Enforce the budget: demote the least probable first, then drop.
    loop {
        let cost: u64 = choices
            .iter()
            .map(|c| video.chunk_bytes(ChunkId::new(c.quality, c.tile, time), scheme))
            .sum();
        if cost <= budget_bytes {
            break;
        }
        // Find the last (least probable) choice that can still demote.
        if let Some(c) = choices.iter_mut().rev().find(|c| c.quality > floor) {
            c.quality = c.quality.down();
        } else if choices.pop().is_none() {
            break;
        }
    }
    choices
}

#[cfg(test)]
mod tests {
    use super::*;
    use sperke_geo::{Orientation, Viewport};
    use sperke_hmp::FusedForecaster;
    use sperke_sim::{SimDuration, SimTime};
    use sperke_video::VideoModelBuilder;

    fn setup() -> (VideoModel, TileForecast, Vec<TileId>) {
        let video = VideoModelBuilder::new(5)
            .duration(SimDuration::from_secs(10))
            .build();
        let grid = *video.grid();
        let history = vec![(SimTime::ZERO, Orientation::FRONT)];
        let forecast = FusedForecaster::motion_only().forecast(
            &grid,
            &history,
            SimTime::ZERO,
            SimTime::from_secs(1),
            ChunkTime(0),
        );
        let fov = Viewport::headset(Orientation::FRONT).visible_tile_set(&grid);
        (video, forecast, fov)
    }

    #[test]
    fn oos_excludes_fov_tiles() {
        let (video, forecast, fov) = setup();
        let choices = select_oos(
            &video,
            &forecast,
            ChunkTime(0),
            &fov,
            Quality(2),
            Scheme::Avc,
            u64::MAX,
            &OosConfig::default(),
        );
        assert!(!choices.is_empty());
        for c in &choices {
            assert!(!fov.contains(&c.tile));
            assert!(c.quality < Quality(2), "OOS strictly below FoV quality");
        }
    }

    #[test]
    fn closer_tiles_get_higher_quality() {
        let (video, forecast, fov) = setup();
        let config = OosConfig {
            max_levels_below_fov: 2,
            ..Default::default()
        };
        let choices = select_oos(
            &video,
            &forecast,
            ChunkTime(0),
            &fov,
            Quality(3),
            Scheme::Avc,
            u64::MAX,
            &config,
        );
        // Choices come out ordered by probability; qualities must be
        // non-increasing along that order.
        for w in choices.windows(2) {
            assert!(w[0].quality >= w[1].quality);
        }
        let has_high = choices.iter().any(|c| c.quality == Quality(2));
        let has_low = choices.iter().any(|c| c.quality < Quality(2));
        assert!(
            has_high && has_low,
            "probability should spread the band: {choices:?}"
        );
    }

    #[test]
    fn budget_enforced() {
        let (video, forecast, fov) = setup();
        let unlimited = select_oos(
            &video,
            &forecast,
            ChunkTime(0),
            &fov,
            Quality(2),
            Scheme::Avc,
            u64::MAX,
            &OosConfig::default(),
        );
        let full_cost: u64 = unlimited
            .iter()
            .map(|c| video.avc_bytes(ChunkId::new(c.quality, c.tile, ChunkTime(0))))
            .sum();
        let budget = full_cost / 3;
        let constrained = select_oos(
            &video,
            &forecast,
            ChunkTime(0),
            &fov,
            Quality(2),
            Scheme::Avc,
            budget,
            &OosConfig::default(),
        );
        let cost: u64 = constrained
            .iter()
            .map(|c| video.avc_bytes(ChunkId::new(c.quality, c.tile, ChunkTime(0))))
            .sum();
        assert!(cost <= budget, "cost {cost} exceeds budget {budget}");
    }

    #[test]
    fn zero_budget_yields_nothing() {
        let (video, forecast, fov) = setup();
        let choices = select_oos(
            &video,
            &forecast,
            ChunkTime(0),
            &fov,
            Quality(2),
            Scheme::Avc,
            0,
            &OosConfig::default(),
        );
        assert!(choices.is_empty());
    }

    #[test]
    fn base_fov_quality_disables_oos() {
        let (video, forecast, fov) = setup();
        let choices = select_oos(
            &video,
            &forecast,
            ChunkTime(0),
            &fov,
            Quality::LOWEST,
            Scheme::Avc,
            u64::MAX,
            &OosConfig::default(),
        );
        assert!(choices.is_empty());
    }

    #[test]
    fn accuracy_compensation_widens_selection() {
        let (video, forecast, fov) = setup();
        let strict = OosConfig {
            min_probability: 0.3,
            ..Default::default()
        };
        let compensated = OosConfig {
            min_probability: 0.3,
            accuracy_compensation: 3.0,
            ..Default::default()
        };
        let a = select_oos(
            &video,
            &forecast,
            ChunkTime(0),
            &fov,
            Quality(2),
            Scheme::Avc,
            u64::MAX,
            &strict,
        );
        let b = select_oos(
            &video,
            &forecast,
            ChunkTime(0),
            &fov,
            Quality(2),
            Scheme::Avc,
            u64::MAX,
            &compensated,
        );
        assert!(
            b.len() >= a.len(),
            "lower HMP accuracy should admit more OOS tiles ({} vs {})",
            b.len(),
            a.len()
        );
    }

    #[test]
    fn worst_case_random_head_spreads_everywhere() {
        // "In the worst case when the head movement is completely random,
        // OOS chunks may spread to the entire panoramic scene."
        let video = VideoModelBuilder::new(5)
            .duration(SimDuration::from_secs(10))
            .build();
        let grid = *video.grid();
        let forecast = TileForecast::uniform(&grid, 0.5);
        let choices = select_oos(
            &video,
            &forecast,
            ChunkTime(0),
            &[],
            Quality(2),
            Scheme::Avc,
            u64::MAX,
            &OosConfig::default(),
        );
        assert_eq!(choices.len(), grid.tile_count());
    }
}
