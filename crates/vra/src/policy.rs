//! The tile-aware viewport-adaptation policy suite.
//!
//! The chunk-quality [`Abr`](crate::abr::Abr) trait answers one
//! question — "what quality for the next fetch unit?". A 360° system
//! really decides something richer: *which tiles, at which SVC layer,
//! for the next scheduling window*, given the predicted-viewport
//! heatmap (and how confident it is), the per-tile rate table, the
//! buffer level and the measured capacity. [`AbrPolicy`] is that
//! contract, and this module implements the natural rivals from the
//! literature behind it:
//!
//! * [`KnapsackQoe`] — optimal tile-rate allocation as expected-QoE
//!   maximization under the capacity budget (Ghosh–Aggarwal–Qian,
//!   arXiv:1704.08215), delegating to the §3.2 greedy knapsack in
//!   [`select_stochastic`];
//! * [`MechanismTransition`] — confidence-driven switching between
//!   full-delivery / tiled / FoV-only delivery mechanisms (Koch et
//!   al., arXiv:1910.02397);
//! * [`QerPrecoded`] — viewport-adaptive *pre-encoded* representations
//!   with quality-emphasized regions: pick 1 of K precoded variants
//!   instead of deciding per tile (Corbillon-style);
//! * [`ConsistencyAware`] — spatio-temporal-consistency-aware
//!   selection that rate-limits per-tile quality changes against the
//!   previous window (Yuan-style), never oscillating more than the
//!   memoryless knapsack it tracks;
//! * [`SperkeSelector`] — the existing Sperke VRA as the fifth rival
//!   (its §3.2 stochastic selector; the player path runs the full
//!   three-part planner via `PlannerKind`-level dispatch upstream).
//!
//! Every policy is a *pure function* of its [`PolicyInput`] — no
//! hidden state, no RNG — which is what lets the fleet/edge batched
//! engines keep their legacy≡batched byte-identity proof: a policy
//! decide computed on a worker thread is the same bytes as one
//! computed inline. Temporal state (the previous window's levels for
//! [`ConsistencyAware`]) is threaded explicitly through
//! [`PolicyInput::prev`] by the caller, per client, in chunk order.

use crate::knapsack::select_stochastic;
use crate::sperke::{emit_abr_decision, FetchPlan, PlanInput, PlannedFetch, SperkeConfig};
use crate::superchunk::SuperChunk;
use serde::{Deserialize, Serialize};
use sperke_geo::TileId;
use sperke_hmp::TileForecast;
use sperke_net::{ChunkPriority, SpatialPriority, TemporalPriority};
use sperke_sim::{SimDuration, TraceSink};
use sperke_video::{ChunkId, ChunkTime, Quality, Scheme, VideoModel};

/// The default probability floor below which tiles are never fetched
/// (matches [`SelectionPolicy::Stochastic`]'s conventional setting and
/// the fleet/edge engines' hardwired floor).
///
/// [`SelectionPolicy::Stochastic`]: crate::sperke::SelectionPolicy
pub const DEFAULT_MIN_PROBABILITY: f64 = 0.05;

/// Everything a tile-aware policy may look at when planning a window.
#[derive(Debug, Clone)]
pub struct PolicyInput<'a> {
    /// The video model: per-tile/per-layer rate table, ladder, grid.
    pub video: &'a VideoModel,
    /// Predicted-viewport heatmap for the target chunk time.
    pub forecast: &'a TileForecast,
    /// How concentrated the forecast is, in `[0, 1]`
    /// ([`TileForecast::confidence`]).
    pub confidence: f64,
    /// The chunk time being planned.
    pub time: ChunkTime,
    /// Playback buffer level (time until the window's deadline).
    pub buffer: SimDuration,
    /// Byte budget for this scheduling window, already derived from the
    /// capacity signal by the caller (so every engine's budget formula
    /// stays exactly what it was before the policy suite existed).
    pub budget_bytes: u64,
    /// The capacity signal behind the budget, bits/second: the measured
    /// BBR estimate when probing is live, else the declared estimate;
    /// `None` before any estimate exists.
    pub capacity_bps: Option<f64>,
    /// The pricing scheme fetches are costed under (AVC or SVC with the
    /// model's overhead) — supplied by the caller, since the player,
    /// fleet and edge engines price differently.
    pub scheme: Scheme,
    /// Tiles below this forecast probability are never fetched.
    pub min_probability: f64,
    /// The previous window's per-tile levels (`-1` = not selected),
    /// indexed by tile id — the temporal state consistency-aware
    /// selection clamps against. `None` on the first window.
    pub prev: Option<&'a [i8]>,
}

/// One tile's assignment in a policy plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileAssignment {
    /// The tile.
    pub tile: TileId,
    /// The SVC/AVC quality level assigned.
    pub quality: Quality,
    /// The forecast probability that motivated the assignment.
    pub probability: f64,
}

/// A policy's output for one scheduling window: per-tile layer
/// assignments in the canonical order — descending probability, ties by
/// ascending tile id — which is exactly [`select_stochastic`]'s output
/// convention and the order the engines submit streams in.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PolicyPlan {
    /// The assignments, canonically ordered.
    pub assignments: Vec<TileAssignment>,
}

impl PolicyPlan {
    /// The per-tile level vector (`-1` = unselected) a caller stores as
    /// the next window's [`PolicyInput::prev`].
    pub fn levels(&self, tile_count: usize) -> Vec<i8> {
        let mut levels = vec![-1i8; tile_count];
        for a in &self.assignments {
            levels[a.tile.index()] = a.quality.0 as i8;
        }
        levels
    }

    /// Total cost of the plan under `scheme`.
    pub fn cost_bytes(&self, video: &VideoModel, time: ChunkTime, scheme: Scheme) -> u64 {
        self.assignments
            .iter()
            .map(|a| video.chunk_bytes(ChunkId::new(a.quality, a.tile, time), scheme))
            .sum()
    }

    /// Expected viewport utility under the forecast probabilities the
    /// plan was made with (`Σ p · (1 + U(q))` — the knapsack objective).
    pub fn expected_utility(&self, video: &VideoModel) -> f64 {
        self.assignments
            .iter()
            .map(|a| a.probability * (1.0 + video.ladder().utility(a.quality)))
            .sum()
    }
}

/// Sort assignments into the canonical order (descending probability,
/// ties by ascending tile id) shared with [`select_stochastic`].
fn canonicalize(mut assignments: Vec<TileAssignment>) -> Vec<TileAssignment> {
    assignments.sort_by(|a, b| {
        b.probability
            .partial_cmp(&a.probability)
            .expect("no NaN probabilities")
            .then(a.tile.cmp(&b.tile))
    });
    assignments
}

/// A tile-aware viewport-adaptation policy: heatmap + confidence +
/// rate table + buffer + capacity in, per-tile layer assignments out.
///
/// Implementations must be pure in their input (same `PolicyInput`,
/// same `PolicyPlan`, bit for bit) — the batched engines rely on it.
pub trait AbrPolicy {
    /// Display name for result tables.
    fn name(&self) -> &'static str;

    /// Plan the next scheduling window.
    fn decide(&self, input: &PolicyInput<'_>) -> PolicyPlan;
}

/// The shared knapsack core every policy degenerates to when its
/// distinguishing knob is off: the §3.2 greedy expected-utility
/// knapsack, byte-identical to what the Sperke stochastic selector and
/// the fleet/edge engines run.
fn knapsack_plan(input: &PolicyInput<'_>) -> PolicyPlan {
    let choices = select_stochastic(
        input.video,
        input.forecast,
        input.time,
        input.budget_bytes,
        input.scheme,
        input.min_probability,
    );
    PolicyPlan {
        assignments: choices
            .into_iter()
            .map(|c| TileAssignment {
                tile: c.tile,
                quality: c.quality,
                probability: input.forecast.prob(c.tile),
            })
            .collect(),
    }
}

/// (a) Knapsack QoE maximization (Ghosh–Aggarwal–Qian): choose per-tile
/// qualities maximizing `Σ p·U(q)` under the byte budget, via the
/// greedy marginal-utility-per-byte heap in [`select_stochastic`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct KnapsackQoe {}

impl AbrPolicy for KnapsackQoe {
    fn name(&self) -> &'static str {
        "knapsack"
    }

    fn decide(&self, input: &PolicyInput<'_>) -> PolicyPlan {
        knapsack_plan(input)
    }
}

/// (b) Mechanism transitioning (Koch et al.): switch the delivery
/// mechanism on HMP confidence. Diffuse forecasts ship the full
/// panorama (full delivery), middling ones ship the probable tiles
/// (tiled delivery), confident ones ship the viewport alone (FoV-only).
///
/// While transitioning is active, every mode allocates the same way:
/// the candidate set is the tiles at or above the mode's probability
/// floor (`0` / `min_probability` / `fov_floor` — a non-decreasing
/// step function of confidence), the affordable prefix of that set in
/// descending-probability order gets the base layer, and leftover
/// budget upgrades the delivered tiles level by level in the same
/// order. Because a higher confidence only raises the floor, and each
/// floor's candidate list is a prefix of the next-lower floor's list,
/// the delivered tile set can only shrink as confidence grows — the
/// monotonicity the proptests pin.
///
/// The distinguishing knob is the threshold pair: with `full_below <=
/// 0` and `fov_only_above > 1` neither transition is reachable, the
/// mechanism is pinned to plain tiled delivery, and the policy
/// collapses to the knapsack core byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MechanismTransition {
    /// Below this confidence, deliver the full panorama.
    pub full_below: f64,
    /// At or above this confidence, deliver the forecast viewport only.
    pub fov_only_above: f64,
    /// Probability floor of the FoV-only mode (clamped to at least the
    /// input's `min_probability` so the mode sets stay nested).
    pub fov_floor: f64,
}

impl Default for MechanismTransition {
    fn default() -> Self {
        MechanismTransition {
            full_below: 0.35,
            fov_only_above: 0.8,
            fov_floor: 0.5,
        }
    }
}

impl MechanismTransition {
    /// Is the transitioning machinery reachable at all?
    pub fn is_active(&self) -> bool {
        self.full_below > 0.0 || self.fov_only_above <= 1.0
    }

    /// The probability floor the mechanism applies at `confidence` —
    /// non-decreasing in confidence by construction.
    pub fn floor_at(&self, confidence: f64, min_probability: f64) -> f64 {
        if confidence < self.full_below {
            0.0
        } else if confidence >= self.fov_only_above {
            self.fov_floor.max(min_probability)
        } else {
            min_probability
        }
    }
}

impl AbrPolicy for MechanismTransition {
    fn name(&self) -> &'static str {
        "transition"
    }

    fn decide(&self, input: &PolicyInput<'_>) -> PolicyPlan {
        if !self.is_active() {
            return knapsack_plan(input);
        }
        let floor = self.floor_at(input.confidence, input.min_probability);
        // Candidates in descending-probability order; a higher floor
        // yields a prefix of a lower floor's list.
        let candidates: Vec<(TileId, f64)> = input
            .forecast
            .ranked()
            .into_iter()
            .filter(|&(_, p)| p >= floor)
            .collect();
        let bytes_at = |tile: TileId, q: Quality| {
            input
                .video
                .chunk_bytes(ChunkId::new(q, tile, input.time), input.scheme)
        };
        // Base pass: the affordable prefix gets the base layer.
        let mut spent: u64 = 0;
        let mut delivered: Vec<(TileId, f64, Quality)> = Vec::new();
        for &(tile, p) in &candidates {
            let cost = bytes_at(tile, Quality::LOWEST);
            if spent + cost > input.budget_bytes {
                break;
            }
            spent += cost;
            delivered.push((tile, p, Quality::LOWEST));
        }
        // Upgrade pass: level by level, highest probability first, with
        // whatever budget the bases left. Never adds tiles.
        let top = input.video.ladder().top();
        for level in 1..=top.0 {
            let q = Quality(level);
            for entry in delivered.iter_mut() {
                if entry.2 .0 + 1 != level {
                    continue;
                }
                let cost = bytes_at(entry.0, q) - bytes_at(entry.0, entry.2);
                if spent + cost <= input.budget_bytes {
                    spent += cost;
                    entry.2 = q;
                }
            }
        }
        PolicyPlan {
            assignments: delivered
                .into_iter()
                .map(|(tile, probability, quality)| TileAssignment {
                    tile,
                    quality,
                    probability,
                })
                .collect(),
        }
    }
}

/// (c) Viewport-adaptive pre-encoded representations with
/// quality-emphasized regions (Corbillon-style): the server offers `K`
/// precoded variants of the full panorama, variant `k` emphasizing the
/// yaw sector centred on `2πk/K`; the client picks exactly one —
/// whichever maximizes expected utility under the forecast at the best
/// affordable emphasis quality. No per-tile decisions: every tile
/// ships, emphasized tiles at `q_hi`, the rest `emphasis_drop` rungs
/// lower.
///
/// The distinguishing knob is `variants`: `0` disables precoding and
/// collapses to the knapsack core byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QerPrecoded {
    /// Number of precoded variants on offer (`0` = precoding off).
    pub variants: u8,
    /// How many ladder rungs below the emphasized quality the
    /// de-emphasized region sits.
    pub emphasis_drop: u8,
}

impl Default for QerPrecoded {
    fn default() -> Self {
        QerPrecoded {
            variants: 4,
            emphasis_drop: 2,
        }
    }
}

impl QerPrecoded {
    /// The tiles variant `k` emphasizes: those whose centre yaw lies
    /// within the sector of width `2π/K` centred on `2πk/K`.
    fn emphasized(&self, video: &VideoModel, k: u8) -> Vec<bool> {
        let grid = video.grid();
        let kf = self.variants.max(1) as f64;
        let center = 2.0 * std::f64::consts::PI * k as f64 / kf;
        let half_width = std::f64::consts::PI / kf;
        grid.tiles()
            .map(|tile| {
                let dir = grid.tile_center(tile);
                let yaw = dir.y.atan2(dir.x);
                let mut d = (yaw - center).abs() % (2.0 * std::f64::consts::PI);
                if d > std::f64::consts::PI {
                    d = 2.0 * std::f64::consts::PI - d;
                }
                d <= half_width
            })
            .collect()
    }
}

impl AbrPolicy for QerPrecoded {
    fn name(&self) -> &'static str {
        "qer"
    }

    fn decide(&self, input: &PolicyInput<'_>) -> PolicyPlan {
        if self.variants == 0 {
            return knapsack_plan(input);
        }
        let video = input.video;
        let grid = video.grid();
        let ladder = video.ladder();
        let bytes_at = |tile: TileId, q: Quality| {
            video.chunk_bytes(ChunkId::new(q, tile, input.time), input.scheme)
        };
        // Best variant = argmax expected utility of its best affordable
        // (q_hi, q_lo) pair; ties resolve to the lowest variant index.
        let mut best: Option<(f64, u8, Vec<bool>, Quality, Quality)> = None;
        for k in 0..self.variants {
            let emphasized = self.emphasized(video, k);
            // Highest affordable emphasis quality for this variant; the
            // cheapest pair (0, 0) is the floor — a precoded stream is
            // indivisible, so it ships even when over budget.
            let mut pick = (Quality::LOWEST, Quality::LOWEST);
            for q_hi in ladder.qualities() {
                let q_lo = Quality(q_hi.0.saturating_sub(self.emphasis_drop));
                let cost: u64 = grid
                    .tiles()
                    .map(|tile| bytes_at(tile, if emphasized[tile.index()] { q_hi } else { q_lo }))
                    .sum();
                if cost <= input.budget_bytes && q_hi >= pick.0 {
                    pick = (q_hi, q_lo);
                }
            }
            let (q_hi, q_lo) = pick;
            let score: f64 = grid
                .tiles()
                .map(|tile| {
                    let q = if emphasized[tile.index()] { q_hi } else { q_lo };
                    input.forecast.prob(tile) * (1.0 + ladder.utility(q))
                })
                .sum();
            let better = match &best {
                None => true,
                Some((s, ..)) => score > *s,
            };
            if better {
                best = Some((score, k, emphasized, q_hi, q_lo));
            }
        }
        let (_, _, emphasized, q_hi, q_lo) = best.expect("variants >= 1");
        let assignments = grid
            .tiles()
            .map(|tile| TileAssignment {
                tile,
                quality: if emphasized[tile.index()] { q_hi } else { q_lo },
                probability: input.forecast.prob(tile),
            })
            .collect();
        PolicyPlan {
            assignments: canonicalize(assignments),
        }
    }
}

/// (d) Spatio-temporal-consistency-aware selection (Yuan-style):
/// compute the memoryless knapsack target, then rate-limit upward
/// quality movement per tile to `max_up_step` levels per window against
/// the previous window's delivery ([`PolicyInput::prev`]). Downgrades
/// are never limited — the clamped level never exceeds the knapsack
/// target, so the plan stays within budget wherever the knapsack did.
///
/// The standard lazy-follower potential argument (`Φ = target −
/// clamped ≥ 0`) gives `Σ|Δclamped| ≤ Σ|Δtarget|` per tile: this
/// policy never oscillates more than the plain knapsack on the same
/// trace, which the proptests pin.
///
/// The distinguishing knob is `max_up_step`: `0` disables the clamp
/// and collapses to the knapsack core byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConsistencyAware {
    /// Maximum upward level movement per tile per window (`0` = clamp
    /// off).
    pub max_up_step: u8,
}

impl Default for ConsistencyAware {
    fn default() -> Self {
        ConsistencyAware { max_up_step: 1 }
    }
}

impl AbrPolicy for ConsistencyAware {
    fn name(&self) -> &'static str {
        "consistency"
    }

    fn decide(&self, input: &PolicyInput<'_>) -> PolicyPlan {
        let target = knapsack_plan(input);
        if self.max_up_step == 0 {
            return target;
        }
        let Some(prev) = input.prev else {
            // First window: adopt the target unchanged (the oscillation
            // bound's base case).
            return target;
        };
        let step = self.max_up_step as i8;
        let assignments = target
            .assignments
            .into_iter()
            .filter_map(|a| {
                let idx = a.tile.index();
                let before = prev.get(idx).copied().unwrap_or(-1);
                let clamped = (a.quality.0 as i8).min(before.saturating_add(step));
                if clamped < 0 {
                    return None;
                }
                Some(TileAssignment {
                    quality: Quality(clamped as u8),
                    ..a
                })
            })
            .collect();
        // The target was canonical and the clamp preserves membership
        // order, so no re-sort is needed.
        PolicyPlan { assignments }
    }
}

/// (e) The existing Sperke VRA as the fifth rival. In the per-viewer
/// player path the builder dispatches this kind to the full three-part
/// Sperke planner (`PlannerKind`-level, upstream); inside the
/// fleet/edge engines — whose planner has always been Sperke's §3.2
/// stochastic selector — it is exactly the knapsack core.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SperkeSelector {}

impl AbrPolicy for SperkeSelector {
    fn name(&self) -> &'static str {
        "sperke"
    }

    fn decide(&self, input: &PolicyInput<'_>) -> PolicyPlan {
        knapsack_plan(input)
    }
}

/// Serializable policy selector: which [`AbrPolicy`] an engine runs.
/// Plain data (like [`SperkeConfig`]) so it threads through builders,
/// sweeps and worker shards by copy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AbrPolicyKind {
    /// (a) knapsack QoE maximization.
    Knapsack,
    /// (b) confidence-driven mechanism transitioning.
    Transition {
        /// Below this confidence, deliver the full panorama.
        full_below: f64,
        /// At or above this confidence, deliver the viewport only.
        fov_only_above: f64,
        /// Probability floor of the FoV-only mode.
        fov_floor: f64,
    },
    /// (c) pre-encoded quality-emphasized-region variants.
    Qer {
        /// Number of precoded variants (`0` = precoding off).
        variants: u8,
        /// Ladder rungs between emphasized and de-emphasized regions.
        emphasis_drop: u8,
    },
    /// (d) spatio-temporal-consistency-aware selection.
    Consistency {
        /// Maximum upward level movement per window (`0` = clamp off).
        max_up_step: u8,
    },
    /// (e) the existing Sperke VRA.
    Sperke,
}

impl AbrPolicyKind {
    /// Every kind at its default tuning, in shootout table order.
    pub fn all() -> [AbrPolicyKind; 5] {
        [
            AbrPolicyKind::Knapsack,
            AbrPolicyKind::transition_default(),
            AbrPolicyKind::qer_default(),
            AbrPolicyKind::consistency_default(),
            AbrPolicyKind::Sperke,
        ]
    }

    /// [`MechanismTransition::default`] as a kind.
    pub fn transition_default() -> AbrPolicyKind {
        let d = MechanismTransition::default();
        AbrPolicyKind::Transition {
            full_below: d.full_below,
            fov_only_above: d.fov_only_above,
            fov_floor: d.fov_floor,
        }
    }

    /// [`QerPrecoded::default`] as a kind.
    pub fn qer_default() -> AbrPolicyKind {
        let d = QerPrecoded::default();
        AbrPolicyKind::Qer {
            variants: d.variants,
            emphasis_drop: d.emphasis_drop,
        }
    }

    /// [`ConsistencyAware::default`] as a kind.
    pub fn consistency_default() -> AbrPolicyKind {
        let d = ConsistencyAware::default();
        AbrPolicyKind::Consistency {
            max_up_step: d.max_up_step,
        }
    }

    /// Display name for result tables.
    pub fn name(&self) -> &'static str {
        match self {
            AbrPolicyKind::Knapsack => KnapsackQoe {}.name(),
            AbrPolicyKind::Transition { .. } => "transition",
            AbrPolicyKind::Qer { .. } => "qer",
            AbrPolicyKind::Consistency { .. } => "consistency",
            AbrPolicyKind::Sperke => SperkeSelector {}.name(),
        }
    }

    /// Plan one window under this kind (pure dispatch — identical
    /// bytes to building the boxed policy and calling it).
    pub fn decide(&self, input: &PolicyInput<'_>) -> PolicyPlan {
        match *self {
            AbrPolicyKind::Knapsack => KnapsackQoe {}.decide(input),
            AbrPolicyKind::Transition {
                full_below,
                fov_only_above,
                fov_floor,
            } => MechanismTransition {
                full_below,
                fov_only_above,
                fov_floor,
            }
            .decide(input),
            AbrPolicyKind::Qer {
                variants,
                emphasis_drop,
            } => QerPrecoded {
                variants,
                emphasis_drop,
            }
            .decide(input),
            AbrPolicyKind::Consistency { max_up_step } => {
                ConsistencyAware { max_up_step }.decide(input)
            }
            AbrPolicyKind::Sperke => SperkeSelector {}.decide(input),
        }
    }

    /// The boxed trait object, for callers that want dynamic dispatch.
    pub fn build(&self) -> Box<dyn AbrPolicy + Send + Sync> {
        match *self {
            AbrPolicyKind::Knapsack => Box::new(KnapsackQoe {}),
            AbrPolicyKind::Transition {
                full_below,
                fov_only_above,
                fov_floor,
            } => Box::new(MechanismTransition {
                full_below,
                fov_only_above,
                fov_floor,
            }),
            AbrPolicyKind::Qer {
                variants,
                emphasis_drop,
            } => Box::new(QerPrecoded {
                variants,
                emphasis_drop,
            }),
            AbrPolicyKind::Consistency { max_up_step } => {
                Box::new(ConsistencyAware { max_up_step })
            }
            AbrPolicyKind::Sperke => Box::new(SperkeSelector {}),
        }
    }
}

/// The player-side wrapper that runs an [`AbrPolicyKind`] where
/// [`SperkeVra`](crate::sperke::SperkeVra) would run: it derives the
/// policy's inputs from a [`PlanInput`] exactly the way the §3.2
/// stochastic planner does (same budget formula, same pricing scheme,
/// same probability floor), converts the [`PolicyPlan`] into a
/// [`FetchPlan`] with the same priorities, forms and trace events, and
/// threads the previous window's levels for temporal policies. With
/// [`AbrPolicyKind::Knapsack`], the produced plans are byte-identical
/// to `SelectionPolicy::Stochastic` — the degeneracy tests pin it.
pub struct PolicyVra {
    /// Which policy plans the windows.
    pub kind: AbrPolicyKind,
    /// Shared planner tuning (encoding policy, FoV threshold, urgency).
    pub config: SperkeConfig,
    trace: TraceSink,
    /// Previous window's per-tile levels (empty until the first plan).
    prev: Vec<i8>,
}

impl PolicyVra {
    /// Construct with a policy kind and the shared planner tuning.
    pub fn new(kind: AbrPolicyKind, config: SperkeConfig) -> PolicyVra {
        PolicyVra {
            kind,
            config,
            trace: TraceSink::disabled(),
            prev: Vec::new(),
        }
    }

    /// Record ABR decisions into `sink`.
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// The probability floor this wrapper plans with: the configured
    /// stochastic floor, or the conventional default under other
    /// selection settings.
    fn min_probability(&self) -> f64 {
        match self.config.selection {
            crate::sperke::SelectionPolicy::Stochastic { min_probability } => min_probability,
            _ => DEFAULT_MIN_PROBABILITY,
        }
    }

    /// Produce the fetch plan for one chunk time.
    pub fn plan(&mut self, input: &PlanInput<'_>) -> FetchPlan {
        let video = input.video;
        // Measured capacity (BBR) over the declared estimate, mirroring
        // the AbrContext preference; with probing off this is exactly
        // the stochastic planner's budget.
        let capacity_bps = input.measured_bps.or(input.bandwidth_bps);
        let budget_bytes = capacity_bps
            .map(|bw| (bw * video.chunk_duration().as_secs_f64() / 8.0) as u64)
            .unwrap_or_else(|| {
                SuperChunk::from_forecast(input.forecast, input.time, self.config.fov_threshold)
                    .bytes_at(video, Quality::LOWEST, Scheme::Avc)
            });
        let tile_count = video.grid().tile_count();
        let policy_input = PolicyInput {
            video,
            forecast: input.forecast,
            confidence: input.forecast.confidence(),
            time: input.time,
            buffer: input.buffer,
            budget_bytes,
            capacity_bps,
            scheme: self.config.encoding.scheme_for(video, 0.5),
            min_probability: self.min_probability(),
            prev: (self.prev.len() == tile_count).then_some(self.prev.as_slice()),
        };
        let plan = self.kind.decide(&policy_input);
        self.prev = plan.levels(tile_count);

        // The same conversion the stochastic planner applies: priority
        // by forecast probability, urgency by deadline, form by the
        // hybrid encoding policy.
        let deadline_close = input.buffer <= self.config.urgent_window;
        let mut fetches = Vec::with_capacity(plan.assignments.len());
        let mut fov_quality = Quality::LOWEST;
        let mut best_p = -1.0;
        for a in &plan.assignments {
            let p = a.probability;
            if p > best_p {
                best_p = p;
                fov_quality = a.quality;
            }
            let spatial = if p >= self.config.fov_threshold {
                SpatialPriority::Fov
            } else {
                SpatialPriority::Oos
            };
            let temporal = if deadline_close && spatial == SpatialPriority::Fov {
                TemporalPriority::Urgent
            } else {
                TemporalPriority::Regular
            };
            let scheme = self.config.encoding.scheme_for(video, p);
            let id = ChunkId::new(a.quality, a.tile, input.time);
            fetches.push(PlannedFetch {
                chunk: id,
                form: self.config.encoding.form_for(video, p, a.quality),
                bytes: video.chunk_bytes(id, scheme),
                priority: ChunkPriority { spatial, temporal },
                probability: p,
            });
        }
        emit_abr_decision(&self.trace, input, fov_quality, &[]);
        FetchPlan {
            time: input.time,
            fov_quality,
            fetches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abr::RateBased;
    use crate::sperke::{SelectionPolicy, SperkeVra};
    use sperke_geo::Orientation;
    use sperke_hmp::FusedForecaster;
    use sperke_sim::SimTime;
    use sperke_video::VideoModelBuilder;

    fn video() -> VideoModel {
        VideoModelBuilder::new(9)
            .duration(SimDuration::from_secs(20))
            .build()
    }

    fn forecast(video: &VideoModel) -> TileForecast {
        let history = vec![(SimTime::ZERO, Orientation::FRONT)];
        FusedForecaster::motion_only().forecast(
            video.grid(),
            &history,
            SimTime::ZERO,
            SimTime::from_secs(1),
            ChunkTime(1),
        )
    }

    fn policy_input<'a>(
        video: &'a VideoModel,
        fc: &'a TileForecast,
        budget: u64,
    ) -> PolicyInput<'a> {
        PolicyInput {
            video,
            forecast: fc,
            confidence: fc.confidence(),
            time: ChunkTime(1),
            buffer: SimDuration::from_secs(2),
            budget_bytes: budget,
            capacity_bps: Some(budget as f64 * 8.0),
            scheme: Scheme::Avc,
            min_probability: DEFAULT_MIN_PROBABILITY,
            prev: None,
        }
    }

    #[test]
    fn all_policies_produce_canonical_order_and_respect_floor() {
        let v = video();
        let fc = forecast(&v);
        let input = policy_input(&v, &fc, 2_000_000);
        for kind in AbrPolicyKind::all() {
            let plan = kind.decide(&input);
            assert!(!plan.assignments.is_empty(), "{}: empty plan", kind.name());
            for w in plan.assignments.windows(2) {
                let ord = w[1]
                    .probability
                    .partial_cmp(&w[0].probability)
                    .expect("no NaN");
                assert!(
                    w[0].probability > w[1].probability
                        || (ord == std::cmp::Ordering::Equal && w[0].tile < w[1].tile),
                    "{}: not canonical at {:?} -> {:?}",
                    kind.name(),
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn knapsack_kind_matches_select_stochastic_exactly() {
        let v = video();
        let fc = forecast(&v);
        for budget in [100_000u64, 800_000, 3_000_000] {
            let input = policy_input(&v, &fc, budget);
            let plan = AbrPolicyKind::Knapsack.decide(&input);
            let raw = select_stochastic(&v, &fc, ChunkTime(1), budget, Scheme::Avc, 0.05);
            assert_eq!(plan.assignments.len(), raw.len());
            for (a, c) in plan.assignments.iter().zip(raw.iter()) {
                assert_eq!((a.tile, a.quality), (c.tile, c.quality));
            }
        }
    }

    #[test]
    fn transition_modes_shrink_delivery_as_confidence_grows() {
        let v = video();
        let fc = forecast(&v);
        let policy = MechanismTransition::default();
        let mut input = policy_input(&v, &fc, 6_000_000);
        let mut last_area = usize::MAX;
        for conf in [0.1, 0.5, 0.95] {
            input.confidence = conf;
            let area = policy.decide(&input).assignments.len();
            assert!(
                area <= last_area,
                "area widened from {last_area} to {area} at confidence {conf}"
            );
            last_area = area;
        }
    }

    #[test]
    fn qer_picks_the_variant_facing_the_forecast() {
        let v = video();
        let fc = forecast(&v); // mass near FRONT (yaw 0)
        let input = policy_input(&v, &fc, 40_000_000);
        let plan = QerPrecoded::default().decide(&input);
        // Full panorama ships.
        assert_eq!(plan.assignments.len(), v.grid().tile_count());
        // The most probable tile sits in the emphasized (higher-quality)
        // region: its quality must be at least every other tile's.
        let top = &plan.assignments[0];
        assert!(plan.assignments.iter().all(|a| a.quality <= top.quality));
        // Two distinct qualities when the budget affords emphasis.
        let distinct: std::collections::BTreeSet<u8> =
            plan.assignments.iter().map(|a| a.quality.0).collect();
        assert!(distinct.len() >= 2, "no emphasis: {distinct:?}");
    }

    #[test]
    fn consistency_limits_upward_movement() {
        let v = video();
        let fc = forecast(&v);
        let mut input = policy_input(&v, &fc, 8_000_000);
        let prev = vec![-1i8; v.grid().tile_count()];
        input.prev = Some(&prev);
        let plan = ConsistencyAware { max_up_step: 1 }.decide(&input);
        // From nothing delivered, no tile may jump past base+0 levels.
        for a in &plan.assignments {
            assert!(a.quality <= Quality(0), "jumped to {:?}", a.quality);
        }
        // And the clamped plan never exceeds the knapsack target.
        let target = AbrPolicyKind::Knapsack.decide(&input);
        let t_levels = target.levels(v.grid().tile_count());
        for a in &plan.assignments {
            assert!((a.quality.0 as i8) <= t_levels[a.tile.index()]);
        }
    }

    #[test]
    fn policy_vra_knapsack_matches_stochastic_planner_bytes() {
        let v = video();
        let fc = forecast(&v);
        let config = SperkeConfig {
            selection: SelectionPolicy::Stochastic {
                min_probability: 0.05,
            },
            ..Default::default()
        };
        let mut legacy = SperkeVra::new(RateBased::default(), config.clone());
        let mut wrapped = PolicyVra::new(AbrPolicyKind::Knapsack, config);
        for bw in [None, Some(8e6), Some(25e6), Some(80e6)] {
            let input = PlanInput {
                video: &v,
                forecast: &fc,
                time: ChunkTime(1),
                now: SimTime::ZERO,
                buffer: SimDuration::from_secs(2),
                bandwidth_bps: bw,
                measured_bps: None,
                bandwidth_forecast: vec![],
                last_quality: Quality(1),
            };
            assert_eq!(
                legacy.plan(&input),
                wrapped.plan(&input),
                "diverged at bw {bw:?}"
            );
        }
    }

    #[test]
    fn policy_vra_prefers_measured_capacity() {
        let v = video();
        let fc = forecast(&v);
        let mut vra = PolicyVra::new(AbrPolicyKind::Knapsack, SperkeConfig::default());
        let mk = |measured| PlanInput {
            video: &v,
            forecast: &fc,
            time: ChunkTime(1),
            now: SimTime::ZERO,
            buffer: SimDuration::from_secs(2),
            bandwidth_bps: Some(60e6),
            measured_bps: measured,
            bandwidth_forecast: vec![],
            last_quality: Quality(1),
        };
        let declared = vra.plan(&mk(None));
        let probed = vra.plan(&mk(Some(6e6)));
        assert!(
            probed.total_bytes() < declared.total_bytes(),
            "measured 6 Mbps must shrink the plan: {} vs {}",
            probed.total_bytes(),
            declared.total_bytes()
        );
    }
}
