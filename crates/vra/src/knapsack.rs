//! Stochastic chunk selection (§3.2): "when being integrated with VRA,
//! this can be formulated as a stochastic optimization problem: using
//! chunks' viewing probabilities to optimally find the chunks to
//! download (as well as their qualities) such that the QoE is
//! maximized."
//!
//! Formally: choose a quality `q_l ∈ {none, 0..top}` per tile `l`
//! maximizing `Σ_l p_l · U(q_l)` subject to `Σ_l bytes(q_l) ≤ B`.
//! Utility is concave in the level index for sensible ladders, so the
//! classic greedy by marginal utility-per-byte is near-optimal; a final
//! backfill pass spends leftover budget.

use serde::{Deserialize, Serialize};
use sperke_geo::TileId;
use sperke_hmp::TileForecast;
use sperke_video::{ChunkId, ChunkTime, Quality, Scheme, VideoModel};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One selected fetch: a tile at a final quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StochasticChoice {
    /// The tile.
    pub tile: TileId,
    /// The quality to fetch it at.
    pub quality: Quality,
}

#[derive(Debug, Clone, Copy)]
struct Candidate {
    ratio: f64,
    tile: TileId,
    /// The quality this increment reaches (from `quality - 1` or from
    /// "not fetched" when `quality == 0`).
    quality: Quality,
    cost: u64,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.ratio == other.ratio && self.tile == other.tile && self.quality == other.quality
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.ratio
            .partial_cmp(&other.ratio)
            .expect("ratios are finite")
            .then(other.tile.cmp(&self.tile)) // deterministic tie-break
            .then(self.quality.cmp(&other.quality))
    }
}

/// Utility of displaying a tile at `q`, with a base reward for the tile
/// being present at all (a blank tile is worse than base quality).
fn tile_utility(video: &VideoModel, q: Quality) -> f64 {
    1.0 + video.ladder().utility(q)
}

/// Greedy expected-utility knapsack over `(tile, quality)` increments.
///
/// Tiles below `min_probability` are never fetched. The result is
/// sorted by descending probability (ties by tile id), mirroring
/// [`select_oos`](crate::oos::select_oos)'s convention.
///
/// ```
/// use sperke_vra::{select_stochastic, selection_cost};
/// use sperke_hmp::TileForecast;
/// use sperke_video::{ChunkTime, Scheme, VideoModelBuilder};
/// use sperke_sim::SimDuration;
///
/// let video = VideoModelBuilder::new(1).duration(SimDuration::from_secs(4)).build();
/// let forecast = TileForecast::uniform(video.grid(), 0.4);
/// let budget = 500_000;
/// let picks = select_stochastic(&video, &forecast, ChunkTime(0), budget, Scheme::Avc, 0.05);
/// assert!(selection_cost(&video, ChunkTime(0), Scheme::Avc, &picks) <= budget);
/// ```
pub fn select_stochastic(
    video: &VideoModel,
    forecast: &TileForecast,
    time: ChunkTime,
    budget_bytes: u64,
    scheme: Scheme,
    min_probability: f64,
) -> Vec<StochasticChoice> {
    let grid = video.grid();
    let bytes_at =
        |tile: TileId, q: Quality| video.chunk_bytes(ChunkId::new(q, tile, time), scheme);

    let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
    for tile in grid.tiles() {
        let p = forecast.prob(tile);
        if p < min_probability {
            continue;
        }
        let cost = bytes_at(tile, Quality(0));
        let gain = p * tile_utility(video, Quality(0));
        heap.push(Candidate {
            ratio: gain / cost.max(1) as f64,
            tile,
            quality: Quality(0),
            cost,
        });
    }

    let top = video.ladder().top();
    let mut chosen: Vec<Option<Quality>> = vec![None; grid.tile_count()];
    let mut spent: u64 = 0;
    while let Some(c) = heap.pop() {
        if spent + c.cost > budget_bytes {
            // This increment doesn't fit; cheaper increments for other
            // tiles may still fit, so keep draining the heap.
            continue;
        }
        // Apply the increment.
        spent += c.cost;
        chosen[c.tile.index()] = Some(c.quality);
        // Offer the next increment for this tile.
        if c.quality < top {
            let p = forecast.prob(c.tile);
            let next = c.quality.up();
            let cost = bytes_at(c.tile, next) - bytes_at(c.tile, c.quality);
            let gain = p * (tile_utility(video, next) - tile_utility(video, c.quality));
            heap.push(Candidate {
                ratio: gain / cost.max(1) as f64,
                tile: c.tile,
                quality: next,
                cost,
            });
        }
    }

    let mut out: Vec<(f64, StochasticChoice)> = chosen
        .iter()
        .enumerate()
        .filter_map(|(i, q)| {
            q.map(|quality| {
                let tile = TileId(i as u16);
                (forecast.prob(tile), StochasticChoice { tile, quality })
            })
        })
        .collect();
    out.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .expect("no NaN")
            .then(a.1.tile.cmp(&b.1.tile))
    });
    out.into_iter().map(|(_, c)| c).collect()
}

/// The expected viewport utility of a selection under the forecast
/// (the objective value the optimizer maximizes).
pub fn expected_utility(
    video: &VideoModel,
    forecast: &TileForecast,
    choices: &[StochasticChoice],
) -> f64 {
    choices
        .iter()
        .map(|c| forecast.prob(c.tile) * tile_utility(video, c.quality))
        .sum()
}

/// Total cost of a selection.
pub fn selection_cost(
    video: &VideoModel,
    time: ChunkTime,
    scheme: Scheme,
    choices: &[StochasticChoice],
) -> u64 {
    choices
        .iter()
        .map(|c| video.chunk_bytes(ChunkId::new(c.quality, c.tile, time), scheme))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sperke_geo::Orientation;
    use sperke_hmp::FusedForecaster;
    use sperke_sim::{SimDuration, SimTime};
    use sperke_video::VideoModelBuilder;

    fn setup() -> (VideoModel, TileForecast) {
        let video = VideoModelBuilder::new(13)
            .duration(SimDuration::from_secs(8))
            .build();
        let history = vec![(SimTime::ZERO, Orientation::FRONT)];
        let fc = FusedForecaster::motion_only().forecast(
            video.grid(),
            &history,
            SimTime::ZERO,
            SimTime::from_secs(1),
            ChunkTime(0),
        );
        (video, fc)
    }

    #[test]
    fn respects_budget_exactly() {
        let (video, fc) = setup();
        for budget in [50_000u64, 200_000, 1_000_000, 5_000_000] {
            let choices = select_stochastic(&video, &fc, ChunkTime(0), budget, Scheme::Avc, 0.05);
            let cost = selection_cost(&video, ChunkTime(0), Scheme::Avc, &choices);
            assert!(cost <= budget, "cost {cost} > budget {budget}");
        }
    }

    #[test]
    fn utility_monotone_in_budget() {
        let (video, fc) = setup();
        let mut last = -1.0;
        for budget in [100_000u64, 400_000, 1_600_000, 6_400_000] {
            let choices = select_stochastic(&video, &fc, ChunkTime(0), budget, Scheme::Avc, 0.05);
            let u = expected_utility(&video, &fc, &choices);
            assert!(u >= last, "utility fell as budget grew: {last} -> {u}");
            last = u;
        }
    }

    #[test]
    fn probable_tiles_get_higher_quality() {
        let (video, fc) = setup();
        let choices = select_stochastic(&video, &fc, ChunkTime(0), 2_000_000, Scheme::Avc, 0.05);
        assert!(!choices.is_empty());
        // choices are sorted by probability; qualities should be
        // non-increasing modulo size jitter — check the extremes.
        let first = choices.first().expect("non-empty");
        let last = choices.last().expect("non-empty");
        assert!(
            first.quality >= last.quality,
            "most probable tile {first:?} below least probable {last:?}"
        );
    }

    #[test]
    fn zero_budget_selects_nothing() {
        let (video, fc) = setup();
        assert!(select_stochastic(&video, &fc, ChunkTime(0), 0, Scheme::Avc, 0.05).is_empty());
    }

    #[test]
    fn improbable_tiles_excluded() {
        let (video, fc) = setup();
        let choices = select_stochastic(&video, &fc, ChunkTime(0), u64::MAX / 2, Scheme::Avc, 0.3);
        for c in &choices {
            assert!(fc.prob(c.tile) >= 0.3);
        }
        // With an unbounded budget every qualifying tile is at top quality.
        for c in &choices {
            assert_eq!(c.quality, video.ladder().top());
        }
    }

    #[test]
    fn greedy_beats_banded_selection_on_objective() {
        // The stochastic optimizer should achieve at least the expected
        // utility of the banded FoV+OOS heuristic at the same budget.
        use crate::oos::{select_oos, OosConfig};
        use crate::superchunk::SuperChunk;
        let (video, fc) = setup();
        let budget = 1_200_000u64;

        // Banded: super chunk at the affordable quality + OOS from the rest.
        let sc = SuperChunk::from_forecast(&fc, ChunkTime(0), 0.75);
        let mut banded: Vec<StochasticChoice> = Vec::new();
        let mut fov_q = Quality(0);
        for q in video.ladder().qualities() {
            if sc.bytes_at(&video, q, Scheme::Avc) <= budget * 7 / 10 {
                fov_q = q;
            }
        }
        for &tile in &sc.tiles {
            banded.push(StochasticChoice {
                tile,
                quality: fov_q,
            });
        }
        let fov_cost = selection_cost(&video, ChunkTime(0), Scheme::Avc, &banded);
        let oos = select_oos(
            &video,
            &fc,
            ChunkTime(0),
            &sc.tiles,
            fov_q,
            Scheme::Avc,
            budget.saturating_sub(fov_cost),
            &OosConfig::default(),
        );
        for c in oos {
            banded.push(StochasticChoice {
                tile: c.tile,
                quality: c.quality,
            });
        }
        let banded_util = expected_utility(&video, &fc, &banded);

        let greedy = select_stochastic(&video, &fc, ChunkTime(0), budget, Scheme::Avc, 0.05);
        let greedy_util = expected_utility(&video, &fc, &greedy);
        assert!(
            greedy_util >= banded_util * 0.98,
            "greedy {greedy_util:.3} vs banded {banded_util:.3}"
        );
    }

    #[test]
    fn deterministic() {
        let (video, fc) = setup();
        let a = select_stochastic(&video, &fc, ChunkTime(0), 800_000, Scheme::Avc, 0.05);
        let b = select_stochastic(&video, &fc, ChunkTime(0), 800_000, Scheme::Avc, 0.05);
        assert_eq!(a, b);
    }
}
