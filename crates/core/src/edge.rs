//! Edge-fleet entry points: the fluent builder and the sweep grid for
//! the [`sperke_edge`] multi-client edge-server model.
//!
//! [`Sperke::edge_builder`] is the five-line way to run an edge
//! experiment; [`run_edge_fleet`] is the direct function form; and
//! [`EdgeGrid`] → [`run_edge_sweep`] fans a clients × cache × seeds
//! grid across CPU cores with the same byte-determinism guarantee as
//! the fleet sweep: the merged report is identical for any worker
//! count.

use crate::builder::Sperke;
use serde::{Deserialize, Serialize};
use sperke_edge::{
    run_edge_batched, run_edge_full, EdgeClientSpec, EdgeConfig, EdgeHarness, EdgeReport,
};
use sperke_geo::{VisibilityCache, DEFAULT_VIS_CACHE_CAPACITY};
use sperke_net::{FaultScript, LossChannel, RecoveryPolicy};
use sperke_sim::sweep::{run_sweep, SweepPlan, SweepReport};
use sperke_sim::trace::{Trace, TraceLevel, TraceSink};
use sperke_sim::{MetricsRegistry, SimDuration};
use sperke_video::VideoModel;
use sperke_vra::AbrPolicyKind;

/// Run the edge experiment: defaults everywhere but `(config, video)`.
/// Equivalent to [`sperke_edge::run_edge`]; re-exported here so the
/// facade crate is the one-stop entry point.
pub fn run_edge_fleet(video: &VideoModel, config: &EdgeConfig) -> EdgeReport {
    sperke_edge::run_edge(video, config)
}

/// The outcome of a traced edge run: report plus captured trace.
#[derive(Debug, Clone)]
pub struct EdgeRunReport {
    /// The edge run's aggregate outcome.
    pub report: EdgeReport,
    /// The captured trace (empty when tracing was off).
    pub trace: Trace,
}

impl EdgeRunReport {
    /// Stable FNV-1a fingerprint of the trace's JSONL bytes.
    pub fn trace_digest(&self) -> u64 {
        self.trace.digest()
    }
}

/// A declarative edge experiment, built by [`Sperke::edge_builder`].
#[derive(Debug, Clone)]
pub struct EdgeBuilder {
    config: EdgeConfig,
    duration: SimDuration,
    clients: Option<Vec<EdgeClientSpec>>,
    faults: FaultScript,
    recovery: RecoveryPolicy,
    trace: TraceLevel,
    vis: VisibilityCache,
    bbr: bool,
    origin_loss: LossChannel,
    policy: Option<AbrPolicyKind>,
}

impl Sperke {
    /// Start an edge-fleet experiment from defaults: 16 clients on a
    /// 12 s generic video, a 400 Mbps egress, an 80 Mbps origin
    /// backhaul and a 256 MiB shared tile cache.
    ///
    /// ```
    /// use sperke_core::Sperke;
    ///
    /// let report = Sperke::edge_builder(7).clients(8).run();
    /// assert_eq!(report.admitted, 8);
    /// assert!(report.cache.hits > 0, "shared viewing hits the cache");
    /// ```
    pub fn edge_builder(seed: u64) -> EdgeBuilder {
        EdgeBuilder {
            config: EdgeConfig {
                seed,
                ..Default::default()
            },
            duration: SimDuration::from_secs(12),
            clients: None,
            faults: FaultScript::none(),
            recovery: RecoveryPolicy::default(),
            trace: TraceLevel::Off,
            vis: VisibilityCache::default(),
            bbr: false,
            origin_loss: LossChannel::Declared,
            policy: None,
        }
    }
}

impl EdgeBuilder {
    /// Number of clients attaching (the default evenly-spaced
    /// population; see [`EdgeBuilder::client_specs`] for full control).
    pub fn clients(mut self, clients: usize) -> Self {
        self.config.clients = clients;
        self
    }

    /// Admission cap.
    pub fn max_clients(mut self, max_clients: usize) -> Self {
        self.config.max_clients = max_clients;
        self
    }

    /// Supply the exact client population (arrivals, seeds, weights,
    /// budgets). Order does not matter — runs canonicalise it.
    pub fn client_specs(mut self, specs: Vec<EdgeClientSpec>) -> Self {
        self.clients = Some(specs);
        self
    }

    /// Shared egress capacity, bits/second.
    pub fn egress(mut self, bps: f64) -> Self {
        self.config.egress_bps = bps;
        self
    }

    /// Origin backhaul capacity, bits/second.
    pub fn origin(mut self, bps: f64) -> Self {
        self.config.origin_bps = bps;
        self
    }

    /// Tile cache capacity in bytes (0 disables: the no-cache baseline).
    pub fn cache_bytes(mut self, bytes: u64) -> Self {
        self.config.cache_bytes = bytes;
        self
    }

    /// Enable or disable crowd-driven prefetching.
    pub fn prefetch(mut self, on: bool) -> Self {
        self.config.prefetch = on;
        self
    }

    /// Video duration.
    pub fn duration(mut self, d: SimDuration) -> Self {
        self.duration = d;
        self
    }

    /// Replace the whole config (the builder's other setters mutate it).
    pub fn config(mut self, config: EdgeConfig) -> Self {
        self.config = config;
        self
    }

    /// Attach a fault script to the origin backhaul (path 0).
    pub fn with_faults(mut self, faults: FaultScript) -> Self {
        self.faults = faults;
        self
    }

    /// Retry policy for failed origin fetches.
    pub fn with_resilience(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Record a deterministic trace of the run at `level`.
    pub fn with_trace(mut self, level: TraceLevel) -> Self {
        self.trace = level;
        self
    }

    /// Share a visibility-cache handle (speed only, never outcomes).
    pub fn vis_cache(mut self, vis: VisibilityCache) -> Self {
        self.vis = vis;
        self
    }

    /// Probe the origin backhaul with a BBR-style estimator and pace
    /// fetches at the measured rate. Off by default.
    pub fn with_bbr(mut self) -> Self {
        self.bbr = true;
        self
    }

    /// Loss model for origin fetch attempts (default
    /// [`LossChannel::Declared`]: fault script only).
    pub fn with_origin_loss(mut self, channel: LossChannel) -> Self {
        self.origin_loss = channel;
        self
    }

    /// Plan every client decide with a rival viewport-adaptation
    /// policy. [`AbrPolicyKind::Knapsack`] and [`AbrPolicyKind::Sperke`]
    /// reproduce the default hardwired selector byte-for-byte.
    pub fn abr_policy(mut self, kind: AbrPolicyKind) -> Self {
        self.policy = Some(kind);
        self
    }

    /// The video this experiment streams (seeded by the config seed).
    pub fn build_video(&self) -> VideoModel {
        sperke_video::VideoModelBuilder::new(self.config.seed)
            .duration(self.duration)
            .build()
    }

    fn client_set(&self) -> Vec<EdgeClientSpec> {
        self.clients
            .clone()
            .unwrap_or_else(|| sperke_edge::default_clients(&self.config))
    }

    /// Run the experiment.
    pub fn run(&self) -> EdgeReport {
        self.run_report().report
    }

    /// Run and return both the report and the captured trace.
    pub fn run_report(&self) -> EdgeRunReport {
        self.run_metered(None)
    }

    /// Run, additionally accumulating counters into `metrics`.
    pub fn run_metered(&self, metrics: Option<&mut MetricsRegistry>) -> EdgeRunReport {
        let video = self.build_video();
        let sink = TraceSink::with_level(self.trace);
        let harness = EdgeHarness {
            trace: sink.clone(),
            faults: self.faults.clone(),
            recovery: self.recovery,
            vis: self.vis.clone(),
            bbr: self.bbr,
            origin_loss: self.origin_loss,
            policy: self.policy,
        };
        let report = run_edge_full(&video, &self.config, &self.client_set(), &harness, metrics);
        drop(harness);
        EdgeRunReport {
            report,
            trace: sink.into_trace(),
        }
    }

    /// Run the experiment through the batched engine on `workers` sense
    /// threads (`0` = machine default). Report and trace are
    /// byte-identical to [`EdgeBuilder::run_report`] for any worker
    /// count — the differential harness in `tests/engine_equivalence.rs`
    /// pins this.
    pub fn run_batched(&self, workers: usize) -> EdgeRunReport {
        let video = self.build_video();
        let sink = TraceSink::with_level(self.trace);
        let harness = EdgeHarness {
            trace: sink.clone(),
            faults: self.faults.clone(),
            recovery: self.recovery,
            vis: self.vis.clone(),
            bbr: self.bbr,
            origin_loss: self.origin_loss,
            policy: self.policy,
        };
        let report = run_edge_batched(
            &video,
            &self.config,
            &self.client_set(),
            &harness,
            None,
            workers,
        );
        drop(harness);
        EdgeRunReport {
            report,
            trace: sink.into_trace(),
        }
    }
}

/// A rectangular grid over [`EdgeConfig`]: clients × cache capacity ×
/// seeds, applied over a shared base config. Point order is
/// deterministic and clients-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeGrid {
    /// Knobs shared by every point.
    pub base: EdgeConfig,
    /// Client-count axis.
    pub clients: Vec<usize>,
    /// Cache-capacity axis, bytes (include 0 for the no-cache baseline).
    pub cache_bytes: Vec<u64>,
    /// Seed axis.
    pub seeds: Vec<u64>,
}

impl EdgeGrid {
    /// A degenerate grid holding only `base`'s own axis values.
    pub fn new(base: EdgeConfig) -> EdgeGrid {
        EdgeGrid {
            clients: vec![base.clients],
            cache_bytes: vec![base.cache_bytes],
            seeds: vec![base.seed],
            base,
        }
    }

    /// Sweep these client counts.
    pub fn clients_axis(mut self, clients: Vec<usize>) -> EdgeGrid {
        self.clients = clients;
        self
    }

    /// Sweep these cache capacities (bytes; 0 = no cache).
    pub fn cache_axis(mut self, cache_bytes: Vec<u64>) -> EdgeGrid {
        self.cache_bytes = cache_bytes;
        self
    }

    /// Sweep these seeds.
    pub fn seed_axis(mut self, seeds: Vec<u64>) -> EdgeGrid {
        self.seeds = seeds;
        self
    }

    /// The grid's points in sweep order (clients-major, then cache,
    /// then seed).
    pub fn points(&self) -> Vec<EdgeConfig> {
        let mut out =
            Vec::with_capacity(self.clients.len() * self.cache_bytes.len() * self.seeds.len());
        for &clients in &self.clients {
            for &cache_bytes in &self.cache_bytes {
                for &seed in &self.seeds {
                    out.push(EdgeConfig {
                        clients,
                        cache_bytes,
                        seed,
                        ..self.base
                    });
                }
            }
        }
        out
    }

    /// The grid as a [`SweepPlan`].
    pub fn plan(&self) -> SweepPlan<EdgeConfig> {
        SweepPlan::new(self.points())
    }
}

/// One merged edge-sweep point: the config that ran and its report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeSweepPoint {
    /// The exact configuration of this point.
    pub config: EdgeConfig,
    /// The edge run's aggregate outcome.
    pub report: EdgeReport,
}

/// Run every point of `grid` against `video` on `threads` workers
/// (`0` = available parallelism), merging deterministically by grid
/// index: byte-identical for any worker count.
pub fn run_edge_sweep(
    video: &VideoModel,
    grid: &EdgeGrid,
    threads: usize,
) -> SweepReport<EdgeSweepPoint> {
    // Per-worker visibility memo, as in `run_fleet_sweep`: the handle is
    // !Send by design, and per-worker caches change only speed.
    thread_local! {
        static WORKER_VIS: VisibilityCache =
            VisibilityCache::new(4 * DEFAULT_VIS_CACHE_CAPACITY);
    }
    let plan = grid.plan();
    run_sweep(&plan, threads, |_index, config| {
        let harness = WORKER_VIS.with(|vis| EdgeHarness {
            vis: vis.clone(),
            ..Default::default()
        });
        EdgeSweepPoint {
            config: *config,
            report: run_edge_full(
                video,
                config,
                &sperke_edge::default_clients(config),
                &harness,
                None,
            ),
        }
    })
}

/// [`run_edge_sweep`] with every client decide planned by a rival
/// viewport-adaptation policy. [`AbrPolicyKind::Knapsack`] and
/// [`AbrPolicyKind::Sperke`] reproduce [`run_edge_sweep`]
/// byte-for-byte; the merged report is byte-identical for any worker
/// count.
pub fn run_edge_sweep_policy(
    video: &VideoModel,
    grid: &EdgeGrid,
    policy: AbrPolicyKind,
    threads: usize,
) -> SweepReport<EdgeSweepPoint> {
    thread_local! {
        static WORKER_VIS: VisibilityCache =
            VisibilityCache::new(4 * DEFAULT_VIS_CACHE_CAPACITY);
    }
    let plan = grid.plan();
    run_sweep(&plan, threads, |_index, config| {
        let harness = WORKER_VIS.with(|vis| EdgeHarness {
            vis: vis.clone(),
            policy: Some(policy),
            ..Default::default()
        });
        EdgeSweepPoint {
            config: *config,
            report: run_edge_full(
                video,
                config,
                &sperke_edge::default_clients(config),
                &harness,
                None,
            ),
        }
    })
}

/// [`run_edge_sweep`] with every point executed by the batched engine
/// (one sense worker per point — the sweep owns the thread pool).
/// Byte-identical to the legacy sweep for any grid and thread count.
pub fn run_edge_sweep_batched(
    video: &VideoModel,
    grid: &EdgeGrid,
    threads: usize,
) -> SweepReport<EdgeSweepPoint> {
    let plan = grid.plan();
    run_sweep(&plan, threads, |_index, config| EdgeSweepPoint {
        config: *config,
        report: run_edge_batched(
            video,
            config,
            &sperke_edge::default_clients(config),
            &EdgeHarness::default(),
            None,
            1,
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sperke_video::VideoModelBuilder;

    fn video() -> VideoModel {
        VideoModelBuilder::new(3)
            .duration(SimDuration::from_secs(10))
            .build()
    }

    #[test]
    fn builder_runs_and_is_deterministic() {
        let mk = || {
            Sperke::edge_builder(5)
                .clients(6)
                .duration(SimDuration::from_secs(8))
                .run()
        };
        let r = mk();
        assert_eq!(r.admitted, 6);
        assert_eq!(r, mk());
    }

    #[test]
    fn builder_trace_digest_is_stable() {
        let mk = || {
            Sperke::edge_builder(9)
                .clients(5)
                .duration(SimDuration::from_secs(6))
                .with_trace(TraceLevel::Verbose)
                .run_report()
        };
        let a = mk();
        let b = mk();
        assert!(!a.trace.is_empty());
        assert_eq!(a.trace_digest(), b.trace_digest());
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn grid_points_enumerate_clients_major() {
        let grid = EdgeGrid::new(EdgeConfig::default())
            .clients_axis(vec![4, 8])
            .cache_axis(vec![0, 64 << 20])
            .seed_axis(vec![7]);
        let points = grid.points();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].clients, 4);
        assert_eq!(points[0].cache_bytes, 0);
        assert_eq!(points[1].cache_bytes, 64 << 20);
        assert_eq!(points[2].clients, 8);
    }

    #[test]
    fn edge_sweep_is_thread_count_invariant() {
        let v = video();
        let grid = EdgeGrid::new(EdgeConfig {
            clients: 4,
            ..Default::default()
        })
        .cache_axis(vec![0, 128 << 20])
        .seed_axis(vec![7, 11]);
        let serial = run_edge_sweep(&v, &grid, 1);
        let parallel = run_edge_sweep(&v, &grid, 4);
        assert_eq!(serial, parallel);
        assert_eq!(serial.to_jsonl(), parallel.to_jsonl());
        assert_eq!(serial.digest(), parallel.digest());
        assert_eq!(serial.len(), 4);
    }

    #[test]
    fn batched_builder_and_sweep_match_legacy() {
        let b = Sperke::edge_builder(11)
            .clients(6)
            .duration(SimDuration::from_secs(8))
            .with_trace(TraceLevel::Events);
        let legacy = b.run_report();
        for workers in [1usize, 4] {
            let batched = b.run_batched(workers);
            assert_eq!(legacy.report, batched.report);
            assert_eq!(legacy.trace_digest(), batched.trace_digest());
        }

        let v = video();
        let grid = EdgeGrid::new(EdgeConfig {
            clients: 4,
            ..Default::default()
        })
        .cache_axis(vec![0, 128 << 20])
        .seed_axis(vec![7]);
        let legacy_sweep = run_edge_sweep(&v, &grid, 2);
        let batched_sweep = run_edge_sweep_batched(&v, &grid, 2);
        assert_eq!(legacy_sweep.to_jsonl(), batched_sweep.to_jsonl());
        assert_eq!(legacy_sweep.digest(), batched_sweep.digest());
    }

    #[test]
    fn policy_edge_builder_and_sweep_collapse_to_legacy() {
        let base = Sperke::edge_builder(13)
            .clients(5)
            .duration(SimDuration::from_secs(8));
        let legacy = base.clone().run();
        assert_eq!(
            legacy,
            base.clone().abr_policy(AbrPolicyKind::Knapsack).run(),
            "knapsack builder diverged from legacy"
        );
        let qer = base.clone().abr_policy(AbrPolicyKind::qer_default());
        let qer_legacy = qer.run();
        assert_eq!(
            qer_legacy,
            qer.run_batched(4).report,
            "qer batched diverged from qer legacy"
        );

        let v = video();
        let grid = EdgeGrid::new(EdgeConfig {
            clients: 4,
            ..Default::default()
        })
        .cache_axis(vec![0, 128 << 20])
        .seed_axis(vec![7]);
        let legacy_sweep = run_edge_sweep(&v, &grid, 2);
        let knap_sweep = run_edge_sweep_policy(&v, &grid, AbrPolicyKind::Knapsack, 2);
        assert_eq!(legacy_sweep.to_jsonl(), knap_sweep.to_jsonl());
        let serial = run_edge_sweep_policy(&v, &grid, AbrPolicyKind::transition_default(), 1);
        let parallel = run_edge_sweep_policy(&v, &grid, AbrPolicyKind::transition_default(), 4);
        assert_eq!(serial.to_jsonl(), parallel.to_jsonl());
        assert_eq!(serial.digest(), parallel.digest());
    }

    #[test]
    fn sweep_baseline_axis_shows_cache_savings() {
        let v = video();
        let grid = EdgeGrid::new(EdgeConfig {
            clients: 8,
            ..Default::default()
        })
        .cache_axis(vec![0, 256 << 20]);
        let report = run_edge_sweep(&v, &grid, 0);
        let points: Vec<&EdgeSweepPoint> = report.ok_results().collect();
        assert_eq!(points.len(), 2);
        let (uncached, cached) = (&points[0].report, &points[1].report);
        assert!(cached.origin_demand_bytes() < uncached.origin_demand_bytes());
    }
}
