//! # sperke-core — the Sperke FoV-guided 360° streaming framework
//!
//! A complete, simulation-backed implementation of the research agenda
//! of *"360° Innovations for Panoramic Video Streaming"* (HotNets 2017):
//! the Sperke tiling-based streaming framework (Figure 2/4) plus every
//! §3 building block —
//!
//! * **§3.1** SVC incremental chunk upgrades and the three-part 360° VRA
//!   ([`vra`]),
//! * **§3.2** big-data head-movement prediction: traces, behaviour
//!   models, popularity heatmaps and the fused forecaster ([`hmp`]),
//! * **§3.3** content-aware multipath scheduling ([`net`]),
//! * **§3.4** live broadcast: the Table-2 platform study, spatial
//!   fall-back and crowd-sourced HMP ([`live`]),
//! * **§3.5** the client decode/render pipeline of Figure 5
//!   ([`pipeline`]).
//!
//! The [`Sperke`] builder is the five-line entry point:
//!
//! ```
//! use sperke_core::{Sperke, SchedulerChoice};
//! use sperke_sim::SimDuration;
//!
//! let result = Sperke::builder(42)
//!     .duration(SimDuration::from_secs(10))
//!     .wifi_plus_lte()
//!     .scheduler(SchedulerChoice::ContentAware)
//!     .run();
//! assert_eq!(result.qoe.chunks, 10);
//! println!("viewport utility {:.2}, stalls {}", result.qoe.mean_viewport_utility, result.qoe.stall_count);
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod edge;
pub mod federation;
pub mod fleet;
pub mod shootout;
pub mod sweep;

pub use builder::{AbrChoice, RunReport, SchedulerChoice, Sperke};
pub use edge::{
    run_edge_fleet, run_edge_sweep, run_edge_sweep_batched, run_edge_sweep_policy, EdgeBuilder,
    EdgeGrid, EdgeRunReport, EdgeSweepPoint,
};
pub use federation::{
    run_federation_sweep, FederationBuilder, FederationGrid, FederationSweepPoint,
};
pub use fleet::{
    run_fleet, run_fleet_batched, run_fleet_batched_policy, run_fleet_policy, run_fleet_with_cache,
    FleetConfig, FleetReport,
};
pub use shootout::{
    run_shootout, PolicyRank, ShootoutCell, ShootoutGrid, ShootoutPoint, ShootoutReport,
};
pub use sperke_edge::{
    flash_crowd_clients, run_edge_batched, run_federation, zipf_catalog_clients, EdgeClientSpec,
    EdgeConfig, EdgeHarness, EdgeReport, FederationConfig, FederationHarness, FederationReport,
    FederationRunReport, NodeSpec, TileCache,
};
pub use sperke_net::{
    BbrConfig, BbrState, FaultScript, FaultSpec, LossChannel, PathFaults, RecoveryPolicy,
};
pub use sperke_sim::sweep::{SweepPlan, SweepReport, SweepSummary};
pub use sperke_sim::trace::{Trace, TraceEvent, TraceLevel};
pub use sweep::{
    run_fleet_sweep, run_fleet_sweep_batched, run_fleet_sweep_batched_policy,
    run_fleet_sweep_policy, FleetGrid, FleetSweepPoint, SperkeSweep, SperkeSweepPoint,
};

// Re-export the subsystem crates under stable names so downstream users
// depend on one crate.
pub use sperke_geo as geo;
pub use sperke_hmp as hmp;
pub use sperke_live as live;
pub use sperke_net as net;
pub use sperke_pipeline as pipeline;
pub use sperke_player as player;
pub use sperke_sim as sim;
pub use sperke_video as video;
pub use sperke_vra as vra;
