//! Parameter-sweep entry points: fan a grid of experiments across CPU
//! cores without giving up byte-determinism.
//!
//! Two sweeps are wired up here:
//!
//! * [`FleetGrid`] → [`run_fleet_sweep`]: a Table-2-style grid over the
//!   fleet experiment — server egress (bandwidth axis) × delivery
//!   scheme (FoV-guided vs full panorama) × seeds — each point one
//!   deterministic [`run_fleet`](crate::fleet::run_fleet) run (through
//!   a per-worker visibility memo).
//! * [`Sperke::sweep`]: replicate a single-session experiment across a
//!   seed panel, capturing each run's QoE and trace digest.
//!
//! Both ride on [`sperke_sim::sweep::run_sweep`]: every point is its own
//! single-threaded, deterministic simulation; the worker pool only
//! changes wall-clock time, never a byte of the report.

use crate::builder::Sperke;
use crate::fleet::{
    run_fleet_batched, run_fleet_batched_policy, run_fleet_inner, run_fleet_with_cache,
    FleetConfig, FleetReport,
};
use serde::{Deserialize, Serialize};
use sperke_geo::{VisibilityCache, DEFAULT_VIS_CACHE_CAPACITY};
use sperke_player::QoeReport;
use sperke_sim::sweep::{run_sweep, SweepPlan, SweepReport};
use sperke_sim::SEED_PANEL;
use sperke_video::VideoModel;
use sperke_vra::AbrPolicyKind;

/// A rectangular grid over [`FleetConfig`]: the cross product of an
/// egress-bandwidth axis, a delivery-scheme axis and a seed axis, all
/// applied over a shared base config.
///
/// Point order is deterministic and bandwidth-major: egress, then
/// scheme, then seed — the row order a Table-2-style report prints in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetGrid {
    /// Knobs shared by every point (viewers, budgets, fetch lead...).
    pub base: FleetConfig,
    /// Server egress capacities to sweep, bits/second.
    pub egress_bps: Vec<f64>,
    /// Delivery schemes to sweep (`true` = FoV-guided).
    pub fov_guided: Vec<bool>,
    /// Seeds to sweep.
    pub seeds: Vec<u64>,
}

impl FleetGrid {
    /// A degenerate grid holding only `base`'s own axes values.
    pub fn new(base: FleetConfig) -> FleetGrid {
        FleetGrid {
            egress_bps: vec![base.egress_bps],
            fov_guided: vec![base.fov_guided],
            seeds: vec![base.seed],
            base,
        }
    }

    /// Sweep these egress capacities (bits/second).
    pub fn egress_axis(mut self, egress_bps: Vec<f64>) -> FleetGrid {
        self.egress_bps = egress_bps;
        self
    }

    /// Sweep these delivery schemes (`true` = FoV-guided).
    pub fn scheme_axis(mut self, fov_guided: Vec<bool>) -> FleetGrid {
        self.fov_guided = fov_guided;
        self
    }

    /// Sweep these seeds.
    pub fn seed_axis(mut self, seeds: Vec<u64>) -> FleetGrid {
        self.seeds = seeds;
        self
    }

    /// The grid's points in sweep order (egress-major, then scheme,
    /// then seed). An empty axis yields an empty — still valid — plan.
    pub fn points(&self) -> Vec<FleetConfig> {
        let mut out =
            Vec::with_capacity(self.egress_bps.len() * self.fov_guided.len() * self.seeds.len());
        for &egress_bps in &self.egress_bps {
            for &fov_guided in &self.fov_guided {
                for &seed in &self.seeds {
                    out.push(FleetConfig {
                        egress_bps,
                        fov_guided,
                        seed,
                        ..self.base
                    });
                }
            }
        }
        out
    }

    /// The grid as a [`SweepPlan`].
    pub fn plan(&self) -> SweepPlan<FleetConfig> {
        SweepPlan::new(self.points())
    }
}

/// One merged fleet-sweep point: the config that ran and its report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSweepPoint {
    /// The exact configuration of this point.
    pub config: FleetConfig,
    /// The fleet run's aggregate outcome.
    pub report: FleetReport,
}

/// Run every point of `grid` against `video` on `threads` workers
/// (`0` = available parallelism) and merge deterministically by grid
/// index: the returned report is byte-identical for any worker count.
pub fn run_fleet_sweep(
    video: &VideoModel,
    grid: &FleetGrid,
    threads: usize,
) -> SweepReport<FleetSweepPoint> {
    // One visibility memo per worker thread, shared across that worker's
    // points: grid points differing only in egress/scheme replay the
    // same gaze traces, so cross-point queries hit. The cache handle is
    // deliberately !Send (see `sperke_geo::viscache`), hence
    // thread-local rather than shared; per-worker caches change only the
    // hit pattern, never a result bit, so the merged report stays
    // byte-identical for any worker count.
    thread_local! {
        static WORKER_VIS: VisibilityCache =
            VisibilityCache::new(4 * DEFAULT_VIS_CACHE_CAPACITY);
    }
    let plan = grid.plan();
    run_sweep(&plan, threads, |_index, config| FleetSweepPoint {
        config: *config,
        report: WORKER_VIS.with(|vis| run_fleet_with_cache(video, config, vis.clone())),
    })
}

/// [`run_fleet_sweep`] with every FoV-guided point planned by a rival
/// viewport-adaptation policy instead of the hardwired stochastic
/// selector. [`AbrPolicyKind::Knapsack`] and [`AbrPolicyKind::Sperke`]
/// reproduce [`run_fleet_sweep`] byte-for-byte; the merged report is
/// byte-identical for any worker count.
pub fn run_fleet_sweep_policy(
    video: &VideoModel,
    grid: &FleetGrid,
    policy: AbrPolicyKind,
    threads: usize,
) -> SweepReport<FleetSweepPoint> {
    thread_local! {
        static WORKER_VIS: VisibilityCache =
            VisibilityCache::new(4 * DEFAULT_VIS_CACHE_CAPACITY);
    }
    let plan = grid.plan();
    run_sweep(&plan, threads, |_index, config| FleetSweepPoint {
        config: *config,
        report: WORKER_VIS.with(|vis| run_fleet_inner(video, config, vis.clone(), Some(policy))),
    })
}

/// [`run_fleet_sweep_policy`] with every point executed by the batched
/// engine. Byte-identical to the legacy policy sweep for any grid,
/// policy and thread count.
pub fn run_fleet_sweep_batched_policy(
    video: &VideoModel,
    grid: &FleetGrid,
    policy: AbrPolicyKind,
    threads: usize,
) -> SweepReport<FleetSweepPoint> {
    let plan = grid.plan();
    run_sweep(&plan, threads, |_index, config| FleetSweepPoint {
        config: *config,
        report: run_fleet_batched_policy(video, config, policy, 1),
    })
}

/// [`run_fleet_sweep`] with every point executed by the batched engine
/// ([`run_fleet_batched`], one worker per point — the sweep already owns
/// the thread pool). Byte-identical to the legacy sweep for any grid
/// and any thread count, pinned by the golden sweep digest.
pub fn run_fleet_sweep_batched(
    video: &VideoModel,
    grid: &FleetGrid,
    threads: usize,
) -> SweepReport<FleetSweepPoint> {
    let plan = grid.plan();
    run_sweep(&plan, threads, |_index, config| FleetSweepPoint {
        config: *config,
        report: run_fleet_batched(video, config, 1),
    })
}

/// One merged session-sweep point: the seed, its QoE and the run's
/// trace digest (stable fingerprint of the captured JSONL trace).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SperkeSweepPoint {
    /// The seed this session ran from.
    pub seed: u64,
    /// The session's QoE report.
    pub qoe: QoeReport,
    /// [`crate::RunReport::trace_digest`] of the run.
    pub trace_digest: u64,
}

/// A seed sweep over [`Sperke`] sessions, built by [`Sperke::sweep`].
///
/// The experiment is described by a constructor closure (`seed →
/// Sperke`) rather than a prototype instance so each worker thread
/// materializes its own session — the builder's trace sink is
/// single-threaded by design and never crosses threads.
pub struct SperkeSweep<F> {
    build: F,
    seeds: Vec<u64>,
    threads: usize,
}

impl Sperke {
    /// Start a seed sweep: `build` maps each seed to the experiment to
    /// run for it. Defaults to the bench seed panel ([`SEED_PANEL`]) on
    /// all available cores.
    ///
    /// ```
    /// use sperke_core::Sperke;
    /// use sperke_sim::SimDuration;
    ///
    /// let report = Sperke::sweep(|seed| {
    ///     Sperke::builder(seed).duration(SimDuration::from_secs(4))
    /// })
    /// .seeds(&[1, 2, 3])
    /// .threads(2)
    /// .run();
    /// assert_eq!(report.len(), 3);
    /// ```
    pub fn sweep<F>(build: F) -> SperkeSweep<F>
    where
        F: Fn(u64) -> Sperke + Sync,
    {
        SperkeSweep {
            build,
            seeds: SEED_PANEL.to_vec(),
            threads: 0,
        }
    }
}

impl<F> SperkeSweep<F>
where
    F: Fn(u64) -> Sperke + Sync,
{
    /// Replace the seed panel.
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Worker threads; `0` (the default) uses available parallelism.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Run the sweep. The merged report is byte-identical for any
    /// thread count.
    pub fn run(&self) -> SweepReport<SperkeSweepPoint> {
        let plan = SweepPlan::new(self.seeds.clone());
        run_sweep(&plan, self.threads, |_index, &seed| {
            let report = (self.build)(seed).run_report();
            let trace_digest = report.trace_digest();
            SperkeSweepPoint {
                seed,
                qoe: report.session.qoe,
                trace_digest,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sperke_sim::SimDuration;
    use sperke_video::VideoModelBuilder;

    fn video() -> VideoModel {
        VideoModelBuilder::new(3)
            .duration(SimDuration::from_secs(6))
            .build()
    }

    fn small_grid() -> FleetGrid {
        FleetGrid::new(FleetConfig {
            viewers: 3,
            ..Default::default()
        })
        .egress_axis(vec![40e6, 200e6])
        .scheme_axis(vec![true, false])
        .seed_axis(vec![7])
    }

    #[test]
    fn grid_points_enumerate_bandwidth_major() {
        let grid = small_grid();
        let points = grid.points();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].egress_bps, 40e6);
        assert!(points[0].fov_guided);
        assert_eq!(points[1].egress_bps, 40e6);
        assert!(!points[1].fov_guided);
        assert_eq!(points[2].egress_bps, 200e6);
        for p in &points {
            assert_eq!(p.viewers, 3, "base knobs flow into every point");
        }
    }

    #[test]
    fn degenerate_and_empty_grids_are_valid() {
        let single = FleetGrid::new(FleetConfig::default());
        assert_eq!(single.points().len(), 1);
        let empty = single.clone().egress_axis(vec![]);
        assert!(empty.points().is_empty());
        let v = video();
        let report = run_fleet_sweep(&v, &empty, 4);
        assert!(report.is_empty());
        let s = report.summary(|p| p.report.egress_bps);
        assert_eq!((s.mean, s.min, s.max), (0.0, 0.0, 0.0));
    }

    #[test]
    fn fleet_sweep_is_thread_count_invariant() {
        let v = video();
        let grid = small_grid();
        let serial = run_fleet_sweep(&v, &grid, 1);
        let parallel = run_fleet_sweep(&v, &grid, 4);
        assert_eq!(serial, parallel);
        assert_eq!(serial.to_jsonl(), parallel.to_jsonl());
        assert_eq!(serial.digest(), parallel.digest());
        assert_eq!(serial.len(), 4);
    }

    #[test]
    fn batched_sweep_matches_legacy_sweep_bytes() {
        let v = video();
        let grid = small_grid();
        let legacy = run_fleet_sweep(&v, &grid, 2);
        let batched = run_fleet_sweep_batched(&v, &grid, 2);
        assert_eq!(legacy.to_jsonl(), batched.to_jsonl());
        assert_eq!(legacy.digest(), batched.digest());
    }

    #[test]
    fn policy_sweeps_collapse_and_stay_thread_invariant() {
        let v = video();
        let grid = small_grid();
        let legacy = run_fleet_sweep(&v, &grid, 2);
        for kind in [AbrPolicyKind::Knapsack, AbrPolicyKind::Sperke] {
            let policy = run_fleet_sweep_policy(&v, &grid, kind, 2);
            assert_eq!(
                legacy.to_jsonl(),
                policy.to_jsonl(),
                "{} sweep diverged from legacy",
                kind.name()
            );
        }
        let qer = AbrPolicyKind::qer_default();
        let serial = run_fleet_sweep_policy(&v, &grid, qer, 1);
        let parallel = run_fleet_sweep_policy(&v, &grid, qer, 4);
        assert_eq!(serial.to_jsonl(), parallel.to_jsonl());
        assert_eq!(serial.digest(), parallel.digest());
        let batched = run_fleet_sweep_batched_policy(&v, &grid, qer, 2);
        assert_eq!(serial.to_jsonl(), batched.to_jsonl());
    }

    #[test]
    fn sperke_seed_sweep_matches_direct_runs() {
        let build = |seed: u64| Sperke::builder(seed).duration(SimDuration::from_secs(4));
        let report = Sperke::sweep(build).seeds(&[5, 9]).threads(2).run();
        assert_eq!(report.len(), 2);
        let points: Vec<&SperkeSweepPoint> = report.ok_results().collect();
        assert_eq!(points[0].seed, 5);
        assert_eq!(points[1].seed, 9);
        assert_eq!(
            points[0].qoe,
            build(5).run().qoe,
            "sweep point == direct run"
        );
        // Same sweep on one thread: byte-identical.
        let serial = Sperke::sweep(build).seeds(&[5, 9]).threads(1).run();
        assert_eq!(serial.to_jsonl(), report.to_jsonl());
    }
}
