//! The ABR shootout: a head-to-head tournament of the five
//! viewport-adaptation policies ([`AbrPolicyKind`]) over a policy ×
//! bandwidth × behaviour × content grid of single-session experiments.
//!
//! Every grid point is one deterministic [`Sperke`] session; the grid
//! fans across CPU cores on the [`run_sweep`] harness and merges by
//! point index, so the full report — points, ranking, JSON, markdown
//! and digest — is byte-identical for any worker count. The smoke
//! grid's digest is pinned in `tests/golden_trace.rs`
//! (`GOLDEN_SHOOTOUT_DIGEST`); `examples/abr_shootout.rs` runs the
//! tournament from the command line and self-checks worker invariance.

use crate::builder::Sperke;
use serde::{Deserialize, Serialize};
use sperke_hmp::Behavior;
use sperke_player::QoeReport;
use sperke_sim::sweep::{run_sweep, SweepPlan};
use sperke_sim::{fnv1a64, SimDuration};
use sperke_vra::AbrPolicyKind;

/// The shootout's experiment grid: the cross product of a policy axis,
/// a bandwidth axis, a viewer-behaviour axis and a content (seed)
/// axis. Point order is deterministic and policy-major: policy, then
/// bandwidth, then behaviour, then seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShootoutGrid {
    /// The rival policies to race.
    pub policies: Vec<AbrPolicyKind>,
    /// Single-link bandwidths to sweep, bits/second.
    pub bandwidths_bps: Vec<f64>,
    /// Viewer behaviour classes to sweep.
    pub behaviors: Vec<Behavior>,
    /// Content seeds to sweep (each seeds video, traces and network).
    pub seeds: Vec<u64>,
    /// Session length in seconds.
    pub duration_secs: u64,
}

impl ShootoutGrid {
    /// The reduced CI smoke grid: all five policies × 2 bandwidths ×
    /// 1 behaviour × 1 seed = 10 points of 4 s sessions. Its report
    /// digest is pinned as `GOLDEN_SHOOTOUT_DIGEST`.
    pub fn smoke() -> ShootoutGrid {
        ShootoutGrid {
            policies: AbrPolicyKind::all().to_vec(),
            bandwidths_bps: vec![10e6, 40e6],
            behaviors: vec![Behavior::Explorer],
            seeds: vec![77],
            duration_secs: 4,
        }
    }

    /// The default tournament grid: all five policies × 2 bandwidths ×
    /// 2 behaviours × 2 seeds = 40 points of 6 s sessions.
    pub fn default_grid() -> ShootoutGrid {
        ShootoutGrid {
            policies: AbrPolicyKind::all().to_vec(),
            bandwidths_bps: vec![10e6, 40e6],
            behaviors: vec![Behavior::Explorer, Behavior::Focused],
            seeds: vec![77, 78],
            duration_secs: 6,
        }
    }

    /// The nightly full grid: all five policies × 3 bandwidths × all
    /// 4 behaviours × 3 seeds = 180 points of 8 s sessions.
    pub fn full() -> ShootoutGrid {
        ShootoutGrid {
            policies: AbrPolicyKind::all().to_vec(),
            bandwidths_bps: vec![8e6, 25e6, 60e6],
            behaviors: Behavior::ALL.to_vec(),
            seeds: vec![77, 78, 79],
            duration_secs: 8,
        }
    }

    /// The grid's points in sweep order (policy-major, then bandwidth,
    /// then behaviour, then seed). An empty axis yields an empty —
    /// still valid — plan.
    pub fn points(&self) -> Vec<ShootoutCell> {
        let mut out = Vec::with_capacity(
            self.policies.len()
                * self.bandwidths_bps.len()
                * self.behaviors.len()
                * self.seeds.len(),
        );
        for &policy in &self.policies {
            for &bandwidth_bps in &self.bandwidths_bps {
                for &behavior in &self.behaviors {
                    for &seed in &self.seeds {
                        out.push(ShootoutCell {
                            policy,
                            bandwidth_bps,
                            behavior,
                            seed,
                        });
                    }
                }
            }
        }
        out
    }
}

/// One grid coordinate: the experiment a shootout point runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShootoutCell {
    /// The policy planning every decide.
    pub policy: AbrPolicyKind,
    /// Single-link bandwidth, bits/second.
    pub bandwidth_bps: f64,
    /// The viewer's behaviour class.
    pub behavior: Behavior,
    /// The content seed.
    pub seed: u64,
}

/// One finished shootout point: the cell that ran and its QoE.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShootoutPoint {
    /// The grid coordinate.
    pub cell: ShootoutCell,
    /// The session's QoE report.
    pub qoe: QoeReport,
}

/// One row of the ranked leaderboard: a policy's aggregate outcome
/// over every grid point it ran.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyRank {
    /// 1-based leaderboard position (1 = best mean QoE score).
    pub rank: usize,
    /// The policy's stable name.
    pub policy: String,
    /// Mean composite QoE score across the policy's points.
    pub mean_score: f64,
    /// Mean viewport utility across the policy's points.
    pub mean_utility: f64,
    /// Total stall events across the policy's points.
    pub stalls: u32,
    /// Total bytes fetched across the policy's points.
    pub bytes_fetched: u64,
    /// Number of grid points behind the aggregates.
    pub points: usize,
}

/// The merged tournament outcome: every point in grid order plus the
/// ranked leaderboard. Byte-identical for any worker count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShootoutReport {
    /// The grid that ran.
    pub grid: ShootoutGrid,
    /// Every point in deterministic grid order.
    pub points: Vec<ShootoutPoint>,
    /// The leaderboard, best mean score first (ties by policy name).
    pub ranking: Vec<PolicyRank>,
}

impl ShootoutReport {
    /// The report as canonical JSON (serde's deterministic field and
    /// float formatting — the bytes the digest fingerprints).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("shootout report serializes")
    }

    /// The ranked leaderboard as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from(
            "| rank | policy | mean QoE | mean utility | stalls | MB fetched | points |\n\
             |-----:|--------|---------:|-------------:|-------:|-----------:|-------:|\n",
        );
        for r in &self.ranking {
            out.push_str(&format!(
                "| {} | {} | {:.4} | {:.4} | {} | {:.1} | {} |\n",
                r.rank,
                r.policy,
                r.mean_score,
                r.mean_utility,
                r.stalls,
                r.bytes_fetched as f64 / 1e6,
                r.points
            ));
        }
        out
    }

    /// FNV-1a 64-bit fingerprint of [`ShootoutReport::to_json`].
    pub fn digest(&self) -> u64 {
        fnv1a64(self.to_json().as_bytes())
    }
}

/// Race every policy over the grid on `threads` workers (`0` =
/// available parallelism). Each point is one single-threaded
/// deterministic [`Sperke`] session; the merged report — and therefore
/// its JSON, markdown and digest — is byte-identical for any worker
/// count.
pub fn run_shootout(grid: &ShootoutGrid, threads: usize) -> ShootoutReport {
    let plan = SweepPlan::new(grid.points());
    let duration = SimDuration::from_secs(grid.duration_secs);
    let sweep = run_sweep(&plan, threads, |_index, cell| {
        let qoe = Sperke::builder(cell.seed)
            .duration(duration)
            .single_link(cell.bandwidth_bps)
            .behavior(cell.behavior)
            .abr_policy(cell.policy)
            .run()
            .qoe;
        ShootoutPoint { cell: *cell, qoe }
    });
    let points: Vec<ShootoutPoint> = sweep.ok_results().cloned().collect();
    assert_eq!(
        points.len(),
        plan.len(),
        "every shootout point must complete"
    );
    let ranking = rank(grid, &points);
    ShootoutReport {
        grid: grid.clone(),
        points,
        ranking,
    }
}

/// Aggregate points per policy and rank by mean composite score
/// (descending; ties broken by policy name so the order is total).
fn rank(grid: &ShootoutGrid, points: &[ShootoutPoint]) -> Vec<PolicyRank> {
    let mut rows: Vec<PolicyRank> = grid
        .policies
        .iter()
        .map(|&policy| {
            let mine: Vec<&ShootoutPoint> =
                points.iter().filter(|p| p.cell.policy == policy).collect();
            let n = mine.len().max(1) as f64;
            PolicyRank {
                rank: 0,
                policy: policy.name().to_string(),
                mean_score: mine.iter().map(|p| p.qoe.score).sum::<f64>() / n,
                mean_utility: mine
                    .iter()
                    .map(|p| p.qoe.mean_viewport_utility)
                    .sum::<f64>()
                    / n,
                stalls: mine.iter().map(|p| p.qoe.stall_count).sum(),
                bytes_fetched: mine.iter().map(|p| p.qoe.bytes_fetched).sum(),
                points: mine.len(),
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.mean_score
            .total_cmp(&a.mean_score)
            .then_with(|| a.policy.cmp(&b.policy))
    });
    for (i, row) in rows.iter_mut().enumerate() {
        row.rank = i + 1;
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_points_enumerate_policy_major() {
        let grid = ShootoutGrid::default_grid();
        let points = grid.points();
        assert_eq!(points.len(), 40);
        assert_eq!(points[0].policy, AbrPolicyKind::Knapsack);
        assert_eq!(points[0].bandwidth_bps, 10e6);
        assert_eq!(points[0].seed, 77);
        assert_eq!(points[1].seed, 78);
        assert_eq!(points[4].bandwidth_bps, 40e6);
        assert_eq!(points[39].policy, AbrPolicyKind::Sperke);
        assert_eq!(ShootoutGrid::full().points().len(), 180);
    }

    #[test]
    fn shootout_is_worker_count_invariant() {
        let grid = ShootoutGrid::smoke();
        let serial = run_shootout(&grid, 1);
        let parallel = run_shootout(&grid, 4);
        assert_eq!(serial, parallel);
        assert_eq!(serial.to_json(), parallel.to_json());
        assert_eq!(serial.to_markdown(), parallel.to_markdown());
        assert_eq!(serial.digest(), parallel.digest());
        assert_eq!(serial.points.len(), 10);
        assert_eq!(serial.ranking.len(), 5, "all five policies ranked");
        for (i, row) in serial.ranking.iter().enumerate() {
            assert_eq!(row.rank, i + 1);
            assert_eq!(row.points, 2);
        }
        for pair in serial.ranking.windows(2) {
            assert!(pair[0].mean_score >= pair[1].mean_score, "ranking sorted");
        }
    }

    #[test]
    fn knapsack_and_sperke_rows_agree_on_fleet_side_metrics() {
        // The full Sperke planner is richer than the knapsack wrapper,
        // so the two rows need not tie — but both must post positive
        // utility on the smoke grid.
        let report = run_shootout(&ShootoutGrid::smoke(), 0);
        for row in &report.ranking {
            assert!(
                row.mean_utility > 0.0,
                "{} delivered no viewport utility",
                row.policy
            );
        }
    }
}
