//! Multi-viewer fleet simulation: the server side of FoV-guided
//! streaming at scale.
//!
//! §2's bandwidth-saving numbers are per-viewer; what a CDN operator
//! cares about is aggregate egress when *hundreds* of viewers share an
//! origin. This module runs N viewers concurrently against one server
//! whose egress is a shared, priority-multiplexed link
//! (`MuxLink`), using the discrete-event kernel
//! ([`Simulation`]/[`World`]) to interleave every viewer's decide and
//! display points in exact time order.

use serde::{Deserialize, Serialize};
use sperke_geo::{
    visible_tiles_batch, Orientation, TileId, Viewport, VisibilityCache, VisibilityScratch,
};
use sperke_hmp::{
    generate_ensemble, generate_ensemble_member, AttentionModel, ForecastScratch, FusedForecaster,
    HeadTrace,
};
use sperke_net::{ChunkPriority, MuxLink, SpatialPriority, StreamId, TemporalPriority};
use sperke_sim::{
    parallel_indexed, ReplayQueue, RunOutcome, Scheduler, SimDuration, SimTime, Simulation, World,
};
use sperke_video::{CellId, ChunkId, ChunkTime, Quality, Scheme, VideoModel};
use sperke_vra::{select_stochastic, AbrPolicyKind, PolicyInput};
use std::cell::RefCell;
use std::collections::HashMap;

/// Fleet experiment parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of concurrent viewers.
    pub viewers: usize,
    /// Server egress capacity, bits/second (the shared bottleneck).
    pub egress_bps: f64,
    /// Per-viewer fetch lead before a chunk's display.
    pub fetch_lead: SimDuration,
    /// Per-viewer downlink budget used by the planner, bits/second.
    pub per_viewer_budget_bps: f64,
    /// FoV-guided (`true`) or full-panorama delivery (`false`).
    pub fov_guided: bool,
    /// Seed for viewer behaviour.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            viewers: 20,
            egress_bps: 200e6,
            fetch_lead: SimDuration::from_secs(2),
            per_viewer_budget_bps: 10e6,
            fov_guided: true,
            seed: 7,
        }
    }
}

/// Aggregate outcome of a fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Viewers served.
    pub viewers: usize,
    /// Total bytes leaving the server.
    pub egress_bytes: u64,
    /// Mean egress rate over the session, bits/second.
    pub egress_bps: f64,
    /// Mean viewport utility across viewers and chunks.
    pub mean_viewport_utility: f64,
    /// Mean blank fraction across viewers and chunks.
    pub mean_blank_fraction: f64,
    /// Fraction of planned tile-streams that missed their display time
    /// (egress congestion).
    pub late_stream_fraction: f64,
}

#[derive(Debug, Clone, Copy)]
enum FleetEvent {
    /// Viewer `v` plans and submits chunk `c`'s fetches.
    Decide { viewer: usize, chunk: u32 },
    /// Viewer `v` displays chunk `c`.
    Display { viewer: usize, chunk: u32 },
}

/// One planned tile fetch: the tile, its quality, the forecast
/// probability driving its egress priority, and its AVC byte size.
/// Everything here is a pure function of `(config, trace, chunk)`.
#[derive(Debug, Clone, Copy)]
struct FleetSelection {
    tile: TileId,
    quality: Quality,
    prob: f64,
    bytes: u64,
}

/// The world-independent slice of a decide: forecast (or the
/// FoV-agnostic budget fit) plus stream sizing. The legacy engine calls
/// it inline at the decide event; the batched engine precomputes it per
/// (viewer, chunk) on worker threads. `now` is the decide's wall time.
#[allow(clippy::too_many_arguments)]
fn fleet_selections(
    video: &VideoModel,
    config: &FleetConfig,
    trace: &HeadTrace,
    start_offset: SimDuration,
    chunk: u32,
    now: SimTime,
    scratch: &mut ForecastScratch,
    history: &mut Vec<(SimTime, Orientation)>,
) -> Vec<FleetSelection> {
    let t = ChunkTime(chunk);
    let video_time = SimTime::ZERO + video.chunk_duration() * chunk as u64;
    // The viewer's own playback position at decide time.
    let own_now = SimTime::from_nanos(now.as_nanos().saturating_sub(start_offset.as_nanos()));
    let budget = (config.per_viewer_budget_bps * video.chunk_duration().as_secs_f64() / 8.0) as u64;
    let picks: Vec<(TileId, Quality, f64)> = if config.fov_guided {
        trace.history_into(own_now, 50, history);
        let forecast = FusedForecaster::motion_only().forecast_with(
            video.grid(),
            history,
            own_now,
            video_time,
            t,
            scratch,
        );
        select_stochastic(video, &forecast, t, budget, Scheme::Avc, 0.05)
            .into_iter()
            .map(|c| (c.tile, c.quality, forecast.prob(c.tile)))
            .collect()
    } else {
        // FoV-agnostic: the whole panorama at the best quality the
        // budget affords.
        let mut q = Quality::LOWEST;
        for cand in video.ladder().qualities() {
            if video.panorama_bytes(cand, t, Scheme::Avc) <= budget {
                q = cand;
            }
        }
        video.grid().tiles().map(|tile| (tile, q, 1.0)).collect()
    };
    picks
        .into_iter()
        .map(|(tile, quality, prob)| FleetSelection {
            tile,
            quality,
            prob,
            bytes: video.avc_bytes(ChunkId::new(quality, tile, t)),
        })
        .collect()
}

/// Like [`fleet_selections`], but planned by a tile-aware policy from
/// the viewport-adaptation suite instead of the hardwired knapsack.
/// `prev` is the viewer's previous-window level vector, updated in
/// place (decides run in chunk order per viewer in both engines, so
/// temporal policies see identical state either way). With
/// [`AbrPolicyKind::Knapsack`] — or any kind whose distinguishing knob
/// is off — the output is byte-identical to [`fleet_selections`].
#[allow(clippy::too_many_arguments)]
fn fleet_selections_policy(
    video: &VideoModel,
    config: &FleetConfig,
    trace: &HeadTrace,
    start_offset: SimDuration,
    chunk: u32,
    now: SimTime,
    scratch: &mut ForecastScratch,
    history: &mut Vec<(SimTime, Orientation)>,
    policy: AbrPolicyKind,
    prev: &mut Vec<i8>,
) -> Vec<FleetSelection> {
    if !config.fov_guided {
        // Full-panorama delivery has nothing for a tile policy to
        // decide; keep the agnostic path identical.
        return fleet_selections(
            video,
            config,
            trace,
            start_offset,
            chunk,
            now,
            scratch,
            history,
        );
    }
    let t = ChunkTime(chunk);
    let video_time = SimTime::ZERO + video.chunk_duration() * chunk as u64;
    let own_now = SimTime::from_nanos(now.as_nanos().saturating_sub(start_offset.as_nanos()));
    let budget = (config.per_viewer_budget_bps * video.chunk_duration().as_secs_f64() / 8.0) as u64;
    trace.history_into(own_now, 50, history);
    let forecast = FusedForecaster::motion_only().forecast_with(
        video.grid(),
        history,
        own_now,
        video_time,
        t,
        scratch,
    );
    let tile_count = video.grid().tile_count();
    let plan = policy.decide(&PolicyInput {
        video,
        forecast: &forecast,
        confidence: forecast.confidence(),
        time: t,
        buffer: config.fetch_lead,
        budget_bytes: budget,
        capacity_bps: Some(config.per_viewer_budget_bps),
        scheme: Scheme::Avc,
        min_probability: 0.05,
        prev: (prev.len() == tile_count).then_some(prev.as_slice()),
    });
    *prev = plan.levels(tile_count);
    plan.assignments
        .into_iter()
        .map(|a| FleetSelection {
            tile: a.tile,
            quality: a.quality,
            prob: a.probability,
            bytes: video.avc_bytes(ChunkId::new(a.quality, a.tile, t)),
        })
        .collect()
}

/// The gaze a fleet display samples: mid-chunk orientation.
fn fleet_gaze(video: &VideoModel, trace: &HeadTrace, chunk: u32) -> Orientation {
    let video_time =
        SimTime::ZERO + video.chunk_duration() * chunk as u64 + video.chunk_duration() / 2;
    trace.at(video_time)
}

struct FleetWorld<'a> {
    video: &'a VideoModel,
    traces: &'a [HeadTrace],
    config: FleetConfig,
    egress: MuxLink,
    /// In-flight streams → (viewer, cell, quality).
    pending: HashMap<StreamId, (usize, CellId, Quality)>,
    /// Delivered cells per viewer.
    buffers: Vec<HashMap<CellId, Quality>>,
    /// Viewer playback offsets (staggered joins).
    start_offset: Vec<SimDuration>,
    /// Memoized exact visibility (display-point evaluation hot path).
    vis: VisibilityCache,
    /// Reusable forecast/history buffers for inline decides.
    fscratch: ForecastScratch,
    hist: Vec<(SimTime, Orientation)>,
    /// When set, inline decides plan through this policy instead of the
    /// hardwired knapsack ([`None`] keeps the legacy path untouched).
    policy: Option<AbrPolicyKind>,
    /// Per-viewer previous-window levels for temporal policies.
    prev_levels: Vec<Vec<i8>>,
    // Accounting.
    egress_bytes: u64,
    utility_acc: f64,
    blank_acc: f64,
    displays: u32,
    streams_total: u32,
    streams_late: u32,
}

impl FleetWorld<'_> {
    /// Pull completed streams out of the egress link into buffers.
    fn drain_egress(&mut self, now: SimTime) {
        for done in self.egress.run_until(now) {
            if let Some((viewer, cell, q)) = self.pending.remove(&done.id) {
                self.buffers[viewer].insert(cell, q);
                self.egress_bytes += done.bytes;
            }
        }
    }

    fn display_wall(&self, viewer: usize, chunk: u32) -> SimTime {
        SimTime::ZERO + self.start_offset[viewer] + self.video.chunk_duration() * (chunk + 1) as u64
    }

    /// A fresh world over shared traces: staggered joins, empty buffers.
    fn new<'a>(
        video: &'a VideoModel,
        config: FleetConfig,
        traces: &'a [HeadTrace],
        vis: VisibilityCache,
    ) -> FleetWorld<'a> {
        FleetWorld {
            video,
            traces,
            config,
            egress: MuxLink::new(config.egress_bps),
            pending: HashMap::new(),
            buffers: vec![HashMap::new(); config.viewers],
            start_offset: (0..config.viewers)
                .map(|v| SimDuration::from_millis(137 * v as u64))
                .collect(),
            vis,
            fscratch: ForecastScratch::new(),
            hist: Vec::new(),
            policy: None,
            prev_levels: vec![Vec::new(); config.viewers],
            egress_bytes: 0,
            utility_acc: 0.0,
            blank_acc: 0.0,
            displays: 0,
            streams_total: 0,
            streams_late: 0,
        }
    }

    /// The stateful half of a decide: submit the planned streams over
    /// the shared egress. Shared verbatim between engines.
    fn apply_decide(
        &mut self,
        viewer: usize,
        chunk: u32,
        selections: &[FleetSelection],
        now: SimTime,
    ) {
        let t = ChunkTime(chunk);
        for sel in selections {
            let priority = ChunkPriority {
                spatial: if sel.prob >= 0.75 {
                    SpatialPriority::Fov
                } else {
                    SpatialPriority::Oos
                },
                temporal: TemporalPriority::Regular,
            };
            let id = self.egress.submit(sel.bytes, now, priority);
            self.pending
                .insert(id, (viewer, CellId::new(sel.tile, t), sel.quality));
            self.streams_total += 1;
        }
    }

    /// The stateful half of a display: count late streams and score the
    /// visible tiles against the delivery buffer.
    fn apply_display(&mut self, viewer: usize, chunk: u32, visible: &[(TileId, f64)]) {
        let t = ChunkTime(chunk);
        // Streams for this chunk still pending are late.
        let late = self
            .pending
            .values()
            .filter(|&&(v, cell, _)| v == viewer && cell.time == t)
            .count();
        self.streams_late += late as u32;

        let mut util = 0.0;
        let mut blank = 0.0;
        for &(tile, coverage) in visible {
            match self.buffers[viewer].get(&CellId::new(tile, t)) {
                Some(&q) => util += coverage * self.video.ladder().utility(q),
                None => blank += coverage,
            }
        }
        self.utility_acc += util;
        self.blank_acc += blank;
        self.displays += 1;
    }
}

impl World<FleetEvent> for FleetWorld<'_> {
    fn handle(&mut self, event: FleetEvent, sched: &mut Scheduler<'_, FleetEvent>) {
        let now = sched.now();
        self.drain_egress(now);
        match event {
            FleetEvent::Decide { viewer, chunk } => {
                let selections = match self.policy {
                    None => fleet_selections(
                        self.video,
                        &self.config,
                        &self.traces[viewer],
                        self.start_offset[viewer],
                        chunk,
                        now,
                        &mut self.fscratch,
                        &mut self.hist,
                    ),
                    Some(kind) => {
                        let mut prev = std::mem::take(&mut self.prev_levels[viewer]);
                        let s = fleet_selections_policy(
                            self.video,
                            &self.config,
                            &self.traces[viewer],
                            self.start_offset[viewer],
                            chunk,
                            now,
                            &mut self.fscratch,
                            &mut self.hist,
                            kind,
                            &mut prev,
                        );
                        self.prev_levels[viewer] = prev;
                        s
                    }
                };
                self.apply_decide(viewer, chunk, &selections, now);
            }
            FleetEvent::Display { viewer, chunk } => {
                let gaze = fleet_gaze(self.video, &self.traces[viewer], chunk);
                let visible =
                    self.vis
                        .visible_tiles(&Viewport::headset(gaze), self.video.grid(), 12);
                self.apply_display(viewer, chunk, &visible);
            }
        }
    }
}

/// Run the fleet experiment with a default per-run visibility cache.
pub fn run_fleet(video: &VideoModel, config: &FleetConfig) -> FleetReport {
    run_fleet_with_cache(video, config, VisibilityCache::default())
}

/// Run the fleet experiment sharing the given visibility cache.
///
/// The cache only memoizes exact `visible_tiles` results, so the report
/// is bit-identical whichever cache handle is passed — including
/// [`VisibilityCache::disabled`], which recomputes every query and
/// serves as the uncached baseline in `perf_baseline`.
pub fn run_fleet_with_cache(
    video: &VideoModel,
    config: &FleetConfig,
    cache: VisibilityCache,
) -> FleetReport {
    run_fleet_inner(video, config, cache, None)
}

/// Run the fleet experiment with a rival viewport-adaptation policy
/// planning every decide. [`AbrPolicyKind::Knapsack`] (and
/// [`AbrPolicyKind::Sperke`], whose fleet-side planner is the same
/// stochastic selector) reproduces [`run_fleet`] byte-for-byte.
pub fn run_fleet_policy(
    video: &VideoModel,
    config: &FleetConfig,
    policy: AbrPolicyKind,
) -> FleetReport {
    run_fleet_inner(video, config, VisibilityCache::default(), Some(policy))
}

pub(crate) fn run_fleet_inner(
    video: &VideoModel,
    config: &FleetConfig,
    cache: VisibilityCache,
    policy: Option<AbrPolicyKind>,
) -> FleetReport {
    assert!(config.viewers > 0);
    let attention = AttentionModel::generic(config.seed);
    let traces = generate_ensemble(
        &attention,
        config.viewers,
        video.duration() + SimDuration::from_secs(5),
        config.seed,
    );

    let mut world = FleetWorld::new(video, *config, &traces, cache);
    world.policy = policy;

    let mut sim = Simulation::new();
    let chunks = video.chunk_count();
    for v in 0..config.viewers {
        for c in 0..chunks {
            let display = world.display_wall(v, c);
            let decide = SimTime::from_nanos(
                display
                    .as_nanos()
                    .saturating_sub(config.fetch_lead.as_nanos()),
            );
            sim.schedule(
                decide,
                FleetEvent::Decide {
                    viewer: v,
                    chunk: c,
                },
            );
            sim.schedule(
                display,
                FleetEvent::Display {
                    viewer: v,
                    chunk: c,
                },
            );
        }
    }
    let outcome = sim.run(&mut world, fleet_horizon(video, config));
    debug_assert_ne!(outcome, RunOutcome::BudgetExhausted);

    finish_fleet_report(&world, video, config)
}

/// The run horizon both engines stop at: session end plus drain slack.
fn fleet_horizon(video: &VideoModel, config: &FleetConfig) -> SimTime {
    SimTime::ZERO
        + video.duration()
        + SimDuration::from_secs(30)
        + SimDuration::from_millis(137 * config.viewers as u64)
}

/// Fold the world's counters into the report — shared engine tail.
fn finish_fleet_report(
    world: &FleetWorld<'_>,
    video: &VideoModel,
    config: &FleetConfig,
) -> FleetReport {
    let session_secs =
        (video.duration() + SimDuration::from_millis(137 * config.viewers as u64)).as_secs_f64();
    let n = world.displays.max(1) as f64;
    FleetReport {
        viewers: config.viewers,
        egress_bytes: world.egress_bytes,
        egress_bps: world.egress_bytes as f64 * 8.0 / session_secs,
        mean_viewport_utility: world.utility_acc / n,
        mean_blank_fraction: world.blank_acc / n,
        late_stream_fraction: if world.streams_total == 0 {
            0.0
        } else {
            world.streams_late as f64 / world.streams_total as f64
        },
    }
}

/// Everything the sense phase computes for one viewer, independent of
/// the shared egress state.
struct ViewerBatch {
    trace: HeadTrace,
    /// Per-chunk planned fetches, evaluated at each chunk's decide time.
    selections: Vec<Vec<FleetSelection>>,
    /// Per-chunk display coverage lists.
    displays: Vec<Vec<(TileId, f64)>>,
}

/// Per-worker sense-phase scratch: forecast tables, visibility counts,
/// gaze-history window.
type SenseScratch = (
    ForecastScratch,
    VisibilityScratch,
    Vec<(SimTime, Orientation)>,
);

thread_local! {
    /// Per-worker scratch for the sense phase. Contents never leak
    /// between calls, so reuse cannot change output bits.
    static SCRATCH: RefCell<SenseScratch> =
        RefCell::new((ForecastScratch::new(), VisibilityScratch::new(), Vec::new()));
}

/// Run the fleet experiment through the data-oriented batched engine.
///
/// Produces a report bit-identical to [`run_fleet`] for any `(video,
/// config)` and any `workers` (0 = machine default): the per-viewer
/// sense phase (head trace, forecasts, selections, display visibility)
/// is a pure function of the config and shards across worker threads by
/// viewer index; the stateful remainder replays the legacy event order
/// through a [`ReplayQueue`] running the same `apply_*` code. The fleet
/// world schedules no dynamic events, so the replay is a pure cursor
/// walk over the pre-sorted schedule.
pub fn run_fleet_batched(video: &VideoModel, config: &FleetConfig, workers: usize) -> FleetReport {
    run_fleet_batched_inner(video, config, workers, None)
}

/// The batched engine with a rival viewport-adaptation policy planning
/// every sense-phase decide. Bit-identical to [`run_fleet_policy`] for
/// any worker count: the per-viewer sense loop walks chunks in order,
/// so temporal policies see the same previous-window state as the
/// legacy engine's time-ordered decides.
pub fn run_fleet_batched_policy(
    video: &VideoModel,
    config: &FleetConfig,
    policy: AbrPolicyKind,
    workers: usize,
) -> FleetReport {
    run_fleet_batched_inner(video, config, workers, Some(policy))
}

fn run_fleet_batched_inner(
    video: &VideoModel,
    config: &FleetConfig,
    workers: usize,
    policy: Option<AbrPolicyKind>,
) -> FleetReport {
    assert!(config.viewers > 0);
    let cfg = *config;
    let chunks = video.chunk_count();
    let session = video.duration() + SimDuration::from_secs(5);
    let attention = AttentionModel::generic(cfg.seed);

    // --- Sense: per-viewer pure work, sharded by viewer index. Results
    // merge by index, so the output is worker-count blind.
    let batches = parallel_indexed(cfg.viewers, workers, |v| {
        let trace = generate_ensemble_member(&attention, v, session, cfg.seed);
        let offset = SimDuration::from_millis(137 * v as u64);
        SCRATCH.with(|s| {
            let (fscratch, vscratch, hist) = &mut *s.borrow_mut();
            let mut selections = Vec::with_capacity(chunks as usize);
            let mut prev: Vec<i8> = Vec::new();
            for c in 0..chunks {
                let display = SimTime::ZERO + offset + video.chunk_duration() * (c + 1) as u64;
                let decide = SimTime::from_nanos(
                    display.as_nanos().saturating_sub(cfg.fetch_lead.as_nanos()),
                );
                selections.push(match policy {
                    None => {
                        fleet_selections(video, &cfg, &trace, offset, c, decide, fscratch, hist)
                    }
                    Some(kind) => fleet_selections_policy(
                        video, &cfg, &trace, offset, c, decide, fscratch, hist, kind, &mut prev,
                    ),
                });
            }
            let gazes: Vec<Orientation> =
                (0..chunks).map(|c| fleet_gaze(video, &trace, c)).collect();
            let mut displays: Vec<Vec<(TileId, f64)>> = vec![Vec::new(); chunks as usize];
            if !gazes.is_empty() {
                let proto = Viewport::headset(gazes[0]);
                visible_tiles_batch(
                    video.grid(),
                    proto.hfov,
                    proto.vfov,
                    &gazes,
                    12,
                    vscratch,
                    |pose, list| displays[pose] = list.to_vec(),
                );
            }
            ViewerBatch {
                trace,
                selections,
                displays,
            }
        })
    });

    let mut traces = Vec::with_capacity(batches.len());
    let mut plans = Vec::with_capacity(batches.len());
    for b in batches {
        traces.push(b.trace);
        plans.push((b.selections, b.displays));
    }
    // The batched path never queries exact visibility at replay time, so
    // the cache handle is inert; disabled keeps it allocation-free.
    let mut world = FleetWorld::new(video, cfg, &traces, VisibilityCache::disabled());

    // --- Static schedule, pushed in the legacy `sim.schedule` order so
    // same-instant ties resolve by identical sequence numbers.
    let mut queue: ReplayQueue<FleetEvent> = ReplayQueue::new();
    for v in 0..cfg.viewers {
        for c in 0..chunks {
            let display = world.display_wall(v, c);
            let decide =
                SimTime::from_nanos(display.as_nanos().saturating_sub(cfg.fetch_lead.as_nanos()));
            queue.push_static(
                decide,
                FleetEvent::Decide {
                    viewer: v,
                    chunk: c,
                },
            );
            queue.push_static(
                display,
                FleetEvent::Display {
                    viewer: v,
                    chunk: c,
                },
            );
        }
    }
    queue.seal();

    // --- Replay: the same pop-until-horizon loop as `Simulation::run`,
    // executing the shared stateful apply methods.
    let horizon = fleet_horizon(video, &cfg);
    while let Some(t) = queue.peek_time() {
        if t > horizon {
            break;
        }
        let (now, event) = queue.pop().expect("peeked non-empty");
        world.drain_egress(now);
        match event {
            FleetEvent::Decide { viewer, chunk } => {
                world.apply_decide(viewer, chunk, &plans[viewer].0[chunk as usize], now);
            }
            FleetEvent::Display { viewer, chunk } => {
                world.apply_display(viewer, chunk, &plans[viewer].1[chunk as usize]);
            }
        }
    }

    finish_fleet_report(&world, video, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sperke_video::VideoModelBuilder;

    fn video() -> VideoModel {
        VideoModelBuilder::new(3)
            .duration(SimDuration::from_secs(15))
            .build()
    }

    #[test]
    fn fov_guided_fleet_cuts_egress_at_matched_quality() {
        let v = video();
        // The agnostic fleet gets a budget that affords the full
        // panorama at Q2 (16 Mbps); the guided fleet delivers at least
        // that viewport quality from a 10 Mbps budget.
        let guided = run_fleet(
            &v,
            &FleetConfig {
                viewers: 10,
                egress_bps: 500e6,
                per_viewer_budget_bps: 10e6,
                fov_guided: true,
                ..Default::default()
            },
        );
        let agnostic = run_fleet(
            &v,
            &FleetConfig {
                viewers: 10,
                egress_bps: 500e6,
                per_viewer_budget_bps: 18e6,
                fov_guided: false,
                ..Default::default()
            },
        );
        assert!(
            guided.mean_viewport_utility >= agnostic.mean_viewport_utility - 0.15,
            "guided {:.2} must match agnostic {:.2}",
            guided.mean_viewport_utility,
            agnostic.mean_viewport_utility
        );
        assert!(
            (guided.egress_bytes as f64) < 0.75 * agnostic.egress_bytes as f64,
            "guided {} vs agnostic {}",
            guided.egress_bytes,
            agnostic.egress_bytes
        );
    }

    #[test]
    fn constrained_egress_makes_streams_late() {
        let v = video();
        let ample = run_fleet(
            &v,
            &FleetConfig {
                viewers: 12,
                egress_bps: 500e6,
                ..Default::default()
            },
        );
        let tight = run_fleet(
            &v,
            &FleetConfig {
                viewers: 12,
                egress_bps: 25e6,
                ..Default::default()
            },
        );
        assert!(tight.late_stream_fraction > ample.late_stream_fraction);
        assert!(tight.mean_blank_fraction > ample.mean_blank_fraction);
    }

    #[test]
    fn guided_fleet_survives_congestion_better() {
        // At an egress that chokes full-panorama delivery, FoV-guided
        // viewers still see most of their viewport.
        let v = video();
        let cfg = FleetConfig {
            viewers: 15,
            egress_bps: 60e6,
            ..Default::default()
        };
        let guided = run_fleet(
            &v,
            &FleetConfig {
                fov_guided: true,
                ..cfg
            },
        );
        let agnostic = run_fleet(
            &v,
            &FleetConfig {
                fov_guided: false,
                ..cfg
            },
        );
        assert!(
            guided.mean_blank_fraction < agnostic.mean_blank_fraction + 0.05,
            "guided {:.3} vs agnostic {:.3}",
            guided.mean_blank_fraction,
            agnostic.mean_blank_fraction
        );
        assert!(guided.mean_viewport_utility > agnostic.mean_viewport_utility);
    }

    #[test]
    fn deterministic() {
        let v = video();
        let cfg = FleetConfig {
            viewers: 6,
            ..Default::default()
        };
        assert_eq!(run_fleet(&v, &cfg), run_fleet(&v, &cfg));
    }

    #[test]
    fn cache_choice_never_changes_the_report() {
        let v = video();
        let cfg = FleetConfig {
            viewers: 5,
            ..Default::default()
        };
        let cached = run_fleet_with_cache(&v, &cfg, VisibilityCache::new(128));
        let uncached = run_fleet_with_cache(&v, &cfg, VisibilityCache::disabled());
        assert_eq!(cached, uncached);
    }

    #[test]
    fn batched_engine_matches_legacy_bit_for_bit() {
        let v = video();
        for cfg in [
            FleetConfig {
                viewers: 9,
                egress_bps: 80e6,
                ..Default::default()
            },
            FleetConfig {
                viewers: 7,
                fov_guided: false,
                seed: 41,
                ..Default::default()
            },
            FleetConfig {
                viewers: 12,
                egress_bps: 25e6,
                ..Default::default()
            },
        ] {
            let legacy = run_fleet(&v, &cfg);
            for workers in [1usize, 2, 8] {
                assert_eq!(
                    legacy,
                    run_fleet_batched(&v, &cfg, workers),
                    "diverged at {workers} workers: {cfg:?}"
                );
            }
        }
    }

    #[test]
    fn knapsack_policy_reproduces_legacy_fleet_bytes() {
        let v = video();
        let cfg = FleetConfig {
            viewers: 8,
            egress_bps: 80e6,
            ..Default::default()
        };
        let legacy = run_fleet(&v, &cfg);
        // The fleet planner has always been Sperke's stochastic
        // selector, so both degenerate kinds must reproduce it exactly.
        for kind in [AbrPolicyKind::Knapsack, AbrPolicyKind::Sperke] {
            assert_eq!(
                legacy,
                run_fleet_policy(&v, &cfg, kind),
                "{} diverged from legacy",
                kind.name()
            );
        }
    }

    #[test]
    fn policy_batched_engine_matches_legacy_for_every_kind() {
        let v = video();
        let cfg = FleetConfig {
            viewers: 7,
            egress_bps: 80e6,
            ..Default::default()
        };
        for kind in AbrPolicyKind::all() {
            let legacy = run_fleet_policy(&v, &cfg, kind);
            for workers in [1usize, 2, 8] {
                assert_eq!(
                    legacy,
                    run_fleet_batched_policy(&v, &cfg, kind, workers),
                    "{} diverged at {workers} workers",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn rival_policies_change_fleet_outcomes() {
        let v = video();
        let cfg = FleetConfig {
            viewers: 8,
            egress_bps: 80e6,
            ..Default::default()
        };
        let knapsack = run_fleet_policy(&v, &cfg, AbrPolicyKind::Knapsack);
        let qer = run_fleet_policy(&v, &cfg, AbrPolicyKind::qer_default());
        let transition = run_fleet_policy(&v, &cfg, AbrPolicyKind::transition_default());
        // Active rivals genuinely plan differently from the knapsack.
        assert_ne!(qer, knapsack, "QER indistinguishable from knapsack");
        assert_ne!(
            transition, knapsack,
            "transitioning indistinguishable from knapsack"
        );
    }

    #[test]
    fn scales_with_viewer_count() {
        let v = video();
        let small = run_fleet(
            &v,
            &FleetConfig {
                viewers: 4,
                ..Default::default()
            },
        );
        let large = run_fleet(
            &v,
            &FleetConfig {
                viewers: 16,
                ..Default::default()
            },
        );
        assert!(large.egress_bytes > small.egress_bytes * 3);
        assert_eq!(small.viewers, 4);
        assert_eq!(large.viewers, 16);
    }
}
