//! Federation entry points: the fluent builder and the sweep grid for
//! the [`sperke_edge::federation`] multi-edge model.
//!
//! [`Sperke::federation_builder`] is the five-line way to run a
//! federation experiment; [`run_federation`] (re-exported from the edge
//! crate) is the direct function form; and [`FederationGrid`] →
//! [`run_federation_sweep`] fans a nodes × regional-cache × seeds grid
//! across CPU cores with the same byte-determinism guarantee as every
//! other sweep: the merged report is identical for any worker count.

use crate::builder::Sperke;
use serde::{Deserialize, Serialize};
use sperke_edge::{
    run_federation, EdgeClientSpec, FederationConfig, FederationHarness, FederationReport,
    FederationRunReport,
};
use sperke_geo::{VisibilityCache, DEFAULT_VIS_CACHE_CAPACITY};
use sperke_net::{FaultScript, RecoveryPolicy};
use sperke_sim::sweep::{run_sweep, SweepPlan, SweepReport};
use sperke_sim::trace::TraceLevel;
use sperke_sim::{MetricsRegistry, SimDuration};
use sperke_video::VideoModel;

/// A declarative federation experiment, built by
/// [`Sperke::federation_builder`].
#[derive(Debug, Clone)]
pub struct FederationBuilder {
    config: FederationConfig,
    duration: SimDuration,
    clients: Option<Vec<EdgeClientSpec>>,
    node_faults: FaultScript,
    origin_faults: FaultScript,
    recovery: RecoveryPolicy,
    trace: TraceLevel,
    vis: VisibilityCache,
    workers: usize,
}

impl Sperke {
    /// Start a federation experiment from defaults: two uniform edge
    /// nodes over a shared regional cache and origin, streaming a 12 s
    /// generic video.
    ///
    /// ```
    /// use sperke_core::Sperke;
    ///
    /// let run = Sperke::federation_builder(7).nodes(2).clients(8).run();
    /// assert_eq!(run.report.admitted, 8);
    /// ```
    pub fn federation_builder(seed: u64) -> FederationBuilder {
        let mut config = FederationConfig::default();
        config.node.seed = seed;
        config.seed = seed;
        FederationBuilder {
            config,
            duration: SimDuration::from_secs(12),
            clients: None,
            node_faults: FaultScript::none(),
            origin_faults: FaultScript::none(),
            recovery: RecoveryPolicy::default(),
            trace: TraceLevel::Off,
            vis: VisibilityCache::default(),
            workers: 0,
        }
    }
}

impl FederationBuilder {
    /// Number of uniform edge nodes (ignored when explicit node specs
    /// are supplied on the config).
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.config.nodes = nodes;
        self
    }

    /// Number of clients attaching (the default evenly-spaced
    /// population; see [`FederationBuilder::client_specs`]).
    pub fn clients(mut self, clients: usize) -> Self {
        self.config.node.clients = clients;
        self
    }

    /// Supply the exact client population. Order never matters.
    pub fn client_specs(mut self, specs: Vec<EdgeClientSpec>) -> Self {
        self.clients = Some(specs);
        self
    }

    /// Regional cache capacity in bytes (0 = isolated-edges baseline).
    pub fn regional_bytes(mut self, bytes: u64) -> Self {
        self.config.regional_bytes = bytes;
        self
    }

    /// Enable or disable cross-edge heatmap sharing.
    pub fn share_heatmaps(mut self, on: bool) -> Self {
        self.config.share_heatmaps = on;
        self
    }

    /// Video duration.
    pub fn duration(mut self, d: SimDuration) -> Self {
        self.duration = d;
        self
    }

    /// Replace the whole config (other setters mutate it).
    pub fn config(mut self, config: FederationConfig) -> Self {
        self.config = config;
        self
    }

    /// Script node crash-stops (path `n` = canonical node `n`).
    pub fn with_node_faults(mut self, faults: FaultScript) -> Self {
        self.node_faults = faults;
        self
    }

    /// Script shared-origin outages (path 0).
    pub fn with_origin_faults(mut self, faults: FaultScript) -> Self {
        self.origin_faults = faults;
        self
    }

    /// Retry policy for origin fetches forwarded by the regional tier.
    pub fn with_resilience(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Record deterministic traces (federation + per node) at `level`.
    pub fn with_trace(mut self, level: TraceLevel) -> Self {
        self.trace = level;
        self
    }

    /// Share a visibility-cache handle (speed only, never outcomes).
    pub fn vis_cache(mut self, vis: VisibilityCache) -> Self {
        self.vis = vis;
        self
    }

    /// Sense-phase worker threads (0 = machine default). Any value
    /// yields byte-identical traces and reports.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// The video this experiment streams (seeded by the node seed).
    pub fn build_video(&self) -> VideoModel {
        sperke_video::VideoModelBuilder::new(self.config.node.seed)
            .duration(self.duration)
            .build()
    }

    fn client_set(&self) -> Vec<EdgeClientSpec> {
        self.clients
            .clone()
            .unwrap_or_else(|| sperke_edge::default_clients(&self.config.node))
    }

    /// Run the experiment.
    pub fn run(&self) -> FederationRunReport {
        self.run_metered(None)
    }

    /// Run, additionally accumulating counters into `metrics`.
    pub fn run_metered(&self, metrics: Option<&mut MetricsRegistry>) -> FederationRunReport {
        let video = self.build_video();
        let harness = FederationHarness {
            trace: self.trace,
            node_faults: self.node_faults.clone(),
            origin_faults: self.origin_faults.clone(),
            recovery: self.recovery,
            vis: self.vis.clone(),
        };
        run_federation(
            &video,
            &self.config,
            &self.client_set(),
            &harness,
            metrics,
            self.workers,
        )
    }
}

/// A rectangular grid over [`FederationConfig`]: node count × regional
/// cache capacity × seeds, applied over a shared base config. Point
/// order is deterministic and nodes-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederationGrid {
    /// Knobs shared by every point.
    pub base: FederationConfig,
    /// Node-count axis.
    pub nodes: Vec<usize>,
    /// Regional-cache axis, bytes (include 0 for the isolated baseline).
    pub regional_bytes: Vec<u64>,
    /// Seed axis (drives both sharding and the client population).
    pub seeds: Vec<u64>,
}

impl FederationGrid {
    /// A degenerate grid holding only `base`'s own axis values.
    pub fn new(base: FederationConfig) -> FederationGrid {
        FederationGrid {
            nodes: vec![base.nodes],
            regional_bytes: vec![base.regional_bytes],
            seeds: vec![base.seed],
            base,
        }
    }

    /// Sweep these node counts.
    pub fn nodes_axis(mut self, nodes: Vec<usize>) -> FederationGrid {
        self.nodes = nodes;
        self
    }

    /// Sweep these regional capacities (bytes; 0 = isolated baseline).
    pub fn regional_axis(mut self, regional_bytes: Vec<u64>) -> FederationGrid {
        self.regional_bytes = regional_bytes;
        self
    }

    /// Sweep these seeds.
    pub fn seed_axis(mut self, seeds: Vec<u64>) -> FederationGrid {
        self.seeds = seeds;
        self
    }

    /// The grid's points in sweep order (nodes-major, then regional
    /// capacity, then seed).
    pub fn points(&self) -> Vec<FederationConfig> {
        let mut out =
            Vec::with_capacity(self.nodes.len() * self.regional_bytes.len() * self.seeds.len());
        for &nodes in &self.nodes {
            for &regional_bytes in &self.regional_bytes {
                for &seed in &self.seeds {
                    let mut cfg = self.base.clone();
                    cfg.nodes = nodes;
                    cfg.regional_bytes = regional_bytes;
                    cfg.seed = seed;
                    cfg.node.seed = seed;
                    out.push(cfg);
                }
            }
        }
        out
    }

    /// The grid as a [`SweepPlan`].
    pub fn plan(&self) -> SweepPlan<FederationConfig> {
        SweepPlan::new(self.points())
    }
}

/// One merged federation-sweep point: the config that ran and its
/// report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederationSweepPoint {
    /// The exact configuration of this point.
    pub config: FederationConfig,
    /// The federation run's aggregate outcome.
    pub report: FederationReport,
}

/// Run every point of `grid` against `video` on `threads` workers
/// (`0` = available parallelism), merging deterministically by grid
/// index: byte-identical for any worker count.
pub fn run_federation_sweep(
    video: &VideoModel,
    grid: &FederationGrid,
    threads: usize,
) -> SweepReport<FederationSweepPoint> {
    // Per-worker visibility memo, as in the fleet and edge sweeps: the
    // handle is !Send by design, and caches change only speed.
    thread_local! {
        static WORKER_VIS: VisibilityCache =
            VisibilityCache::new(4 * DEFAULT_VIS_CACHE_CAPACITY);
    }
    let plan = grid.plan();
    run_sweep(&plan, threads, |_index, config| {
        let harness = WORKER_VIS.with(|vis| FederationHarness {
            vis: vis.clone(),
            ..Default::default()
        });
        FederationSweepPoint {
            config: config.clone(),
            report: run_federation(
                video,
                config,
                &sperke_edge::default_clients(&config.node),
                &harness,
                None,
                1,
            )
            .report,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sperke_video::VideoModelBuilder;

    fn video() -> VideoModel {
        VideoModelBuilder::new(3)
            .duration(SimDuration::from_secs(10))
            .build()
    }

    #[test]
    fn builder_runs_and_is_deterministic() {
        let mk = || {
            Sperke::federation_builder(5)
                .nodes(3)
                .clients(9)
                .duration(SimDuration::from_secs(8))
                .with_trace(TraceLevel::Events)
                .run()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.report, b.report);
        assert_eq!(a.combined_digest(), b.combined_digest());
        assert_eq!(a.report.clients, 9);
        assert_eq!(a.report.nodes.len(), 3);
    }

    #[test]
    fn grid_points_enumerate_nodes_major() {
        let grid = FederationGrid::new(FederationConfig::default())
            .nodes_axis(vec![1, 4])
            .regional_axis(vec![0, 1 << 30])
            .seed_axis(vec![7]);
        let points = grid.points();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].nodes, 1);
        assert_eq!(points[0].regional_bytes, 0);
        assert_eq!(points[1].regional_bytes, 1 << 30);
        assert_eq!(points[2].nodes, 4);
    }

    #[test]
    fn federation_sweep_is_thread_count_invariant() {
        let v = video();
        let mut base = FederationConfig::default();
        base.node.clients = 6;
        let grid = FederationGrid::new(base)
            .nodes_axis(vec![1, 2])
            .seed_axis(vec![7, 11]);
        let serial = run_federation_sweep(&v, &grid, 1);
        let parallel = run_federation_sweep(&v, &grid, 4);
        assert_eq!(serial, parallel);
        assert_eq!(serial.to_jsonl(), parallel.to_jsonl());
        assert_eq!(serial.digest(), parallel.digest());
        assert_eq!(serial.len(), 4);
    }
}
