//! The high-level session builder: one fluent entry point that wires a
//! video, a viewer, a network and the Sperke algorithms into a runnable
//! streaming experiment.

use sperke_geo::VisibilityCache;
use sperke_hmp::{
    generate_ensemble, AttentionModel, Behavior, FusedForecaster, HeadTrace, Heatmap,
    OracleForecaster, TraceGenerator, ViewingContext,
};
use sperke_net::{
    BandwidthTrace, BbrConfig, ContentAware, EarliestCompletion, FaultScript, LossChannel, MinRtt,
    PathModel, PathQueue, RecoveryPolicy, SinglePath,
};
use sperke_player::{run_session, PlannerKind, PlayerConfig, SessionResult};
use sperke_sim::trace::{Trace, TraceLevel, TraceSink};
use sperke_sim::{SimDuration, SimRng};
use sperke_video::{Ladder, VideoModel, VideoModelBuilder};
use sperke_vra::{AbrPolicyKind, BufferBased, Mpc, RateBased, SperkeConfig};

/// Which inner ABR drives the super-chunk quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbrChoice {
    /// FESTIVE-style throughput-based (§3.1.2 \[29\]).
    RateBased,
    /// BBA-style buffer-based (§3.1.2 \[28\]).
    BufferBased,
    /// MPC-style control-theoretic (§3.1.2 \[44\]).
    Mpc,
}

/// Which multipath scheduler moves chunks (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerChoice {
    /// Only the first path is used.
    SinglePath,
    /// MPTCP's content-agnostic minRTT.
    MinRtt,
    /// Content-agnostic earliest-completion splitting.
    EarliestCompletion,
    /// The paper's priority-driven content-aware scheduler.
    ContentAware,
}

/// A declarative description of one streaming experiment.
#[derive(Debug, Clone)]
pub struct Sperke {
    seed: u64,
    duration: SimDuration,
    ladder: Ladder,
    grid: (u16, u16),
    attention: AttentionModel,
    behavior: Behavior,
    context: ViewingContext,
    paths: Vec<PathModel>,
    scheduler: SchedulerChoice,
    abr: AbrChoice,
    player: PlayerConfig,
    crowd_users: usize,
    use_speed_bound: bool,
    svc_overhead: f64,
    chunk_duration: SimDuration,
    oracle_hmp: bool,
    trace: TraceLevel,
    faults: FaultScript,
    bbr: Option<BbrConfig>,
    loss_channel: LossChannel,
}

/// The outcome of a traced experiment: the session result plus the
/// captured [`Trace`] (empty when tracing was off).
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The streaming session's QoE and per-chunk records.
    pub session: SessionResult,
    /// The captured trace (events + metrics registry).
    pub trace: Trace,
}

impl RunReport {
    /// Stable FNV-1a fingerprint of the trace's JSONL bytes. Identical
    /// seeds and trace levels yield identical digests across runs.
    pub fn trace_digest(&self) -> u64 {
        self.trace.digest()
    }

    /// The trace as newline-delimited JSON, one event per line.
    pub fn to_jsonl(&self) -> String {
        self.trace.to_jsonl()
    }
}

impl Sperke {
    /// Start from sensible defaults: a 60 s generic video on a 4×6 grid,
    /// one focused viewer, a single 25 Mbps WiFi path, the full Sperke
    /// planner with a rate-based inner ABR.
    pub fn builder(seed: u64) -> Sperke {
        Sperke {
            seed,
            duration: SimDuration::from_secs(60),
            ladder: Ladder::vod_default(),
            grid: (4, 6),
            attention: AttentionModel::generic(seed),
            behavior: Behavior::Focused,
            context: ViewingContext::default(),
            paths: vec![PathModel::wifi()],
            scheduler: SchedulerChoice::SinglePath,
            abr: AbrChoice::RateBased,
            player: PlayerConfig::default(),
            crowd_users: 0,
            use_speed_bound: false,
            svc_overhead: 0.10,
            chunk_duration: SimDuration::from_secs(1),
            oracle_hmp: false,
            trace: TraceLevel::Off,
            faults: FaultScript::none(),
            bbr: None,
            loss_channel: LossChannel::Declared,
        }
    }

    /// Enable BBR-style measured-capacity probing on every path: a
    /// windowed max-filter over delivery-rate samples feeds the
    /// schedulers' completion estimates instead of the declared trace.
    /// Off by default — declared capacity keeps golden traces stable.
    pub fn with_bbr(self) -> Self {
        self.with_bbr_config(BbrConfig::default())
    }

    /// Enable BBR-style probing with an explicit [`BbrConfig`].
    pub fn with_bbr_config(mut self, config: BbrConfig) -> Self {
        self.bbr = Some(config);
        self
    }

    /// Replace the declared i.i.d. loss rate with a [`LossChannel`] —
    /// typically [`LossChannel::bursty_default`]'s Gilbert–Elliott chain.
    /// The chain draws from a split RNG stream, so
    /// [`LossChannel::Declared`] (the default) is byte-identical to
    /// builds that predate this knob.
    pub fn with_loss_channel(mut self, channel: LossChannel) -> Self {
        self.loss_channel = channel;
        self
    }

    /// Attach a fault-injection script: scripted or seeded-stochastic
    /// outages and degradations applied to the network paths. The script
    /// is compiled per path when the experiment runs; the same seed and
    /// script always reproduce the same failures.
    pub fn with_faults(mut self, faults: FaultScript) -> Self {
        self.faults = faults;
        self
    }

    /// Enable resilient transfers: deadline-based timeouts with bounded
    /// retry, exponential backoff and cross-path failover, following
    /// `policy`. Without this, a transfer interrupted by an outage simply
    /// fails (the naive client of the §3.3 comparison).
    pub fn with_resilience(mut self, policy: RecoveryPolicy) -> Self {
        self.player.resilience = Some(policy);
        self
    }

    /// Enable spatial fall-back rendering: when a chunk's tile is
    /// missing, the player re-displays the previous chunk's buffered
    /// tile (counted as `degraded_fraction`) instead of going blank.
    pub fn with_fallback(mut self) -> Self {
        self.player.fallback_enabled = true;
        self
    }

    /// Record a deterministic trace of the run at `level`; retrieve it
    /// through [`Sperke::run_report`]. Defaults to [`TraceLevel::Off`],
    /// which costs nothing.
    pub fn with_trace(mut self, level: TraceLevel) -> Self {
        self.trace = level;
        self
    }

    /// Bound (or share) the tile-visibility memo the player's display
    /// path uses. Cached results are bit-identical to recomputation, so
    /// this knob changes speed, never outcomes. A default-capacity
    /// cache is already on by default; pass a [`VisibilityCache`] handle
    /// explicitly to share one memo across several experiments in the
    /// same thread, e.g. a seed panel replaying the same video.
    pub fn vis_cache(mut self, cache: VisibilityCache) -> Self {
        self.player.vis_cache = cache;
        self
    }

    /// Bound the tile-visibility memo to `capacity` entries.
    pub fn with_vis_cache(self, capacity: usize) -> Self {
        self.vis_cache(VisibilityCache::new(capacity))
    }

    /// Disable tile-visibility memoization: every display evaluation
    /// recomputes from scratch (the uncached baseline the perf harness
    /// measures against).
    pub fn without_vis_cache(self) -> Self {
        self.vis_cache(VisibilityCache::disabled())
    }

    /// Video duration.
    pub fn duration(mut self, d: SimDuration) -> Self {
        self.duration = d;
        self
    }

    /// Bitrate ladder.
    pub fn ladder(mut self, ladder: Ladder) -> Self {
        self.ladder = ladder;
        self
    }

    /// Tile grid dimensions.
    pub fn grid(mut self, rows: u16, cols: u16) -> Self {
        self.grid = (rows, cols);
        self
    }

    /// The video's attention structure (hotspots).
    pub fn attention(mut self, attention: AttentionModel) -> Self {
        self.attention = attention;
        self
    }

    /// The viewer's behaviour class.
    pub fn behavior(mut self, behavior: Behavior) -> Self {
        self.behavior = behavior;
        self
    }

    /// The viewing context (pose, mode, mobility).
    pub fn context(mut self, context: ViewingContext) -> Self {
        self.context = context;
        self
    }

    /// Replace the network paths.
    pub fn paths(mut self, paths: Vec<PathModel>) -> Self {
        assert!(!paths.is_empty(), "need at least one path");
        self.paths = paths;
        self
    }

    /// Convenience: a single constant-rate path.
    pub fn single_link(mut self, bps: f64) -> Self {
        self.paths = vec![PathModel::new(
            "link",
            BandwidthTrace::constant(bps),
            SimDuration::from_millis(20),
            0.0,
        )];
        self
    }

    /// Convenience: the WiFi + LTE dual-path setup of §3.3.
    pub fn wifi_plus_lte(mut self) -> Self {
        self.paths = vec![PathModel::wifi(), PathModel::lte()];
        self
    }

    /// Multipath scheduler.
    pub fn scheduler(mut self, scheduler: SchedulerChoice) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Inner ABR algorithm.
    pub fn abr(mut self, abr: AbrChoice) -> Self {
        self.abr = abr;
        self
    }

    /// Player configuration (planner, upgrades, weights...).
    pub fn player(mut self, player: PlayerConfig) -> Self {
        self.player = player;
        self
    }

    /// Use the FoV-agnostic baseline planner.
    pub fn fov_agnostic(mut self) -> Self {
        self.player.planner = PlannerKind::FovAgnostic;
        self
    }

    /// Use the Sperke planner with an explicit configuration.
    pub fn sperke_planner(mut self, config: SperkeConfig) -> Self {
        self.player.planner = PlannerKind::Sperke(config);
        self
    }

    /// Select a viewport-adaptation policy from the rival suite
    /// ([`sperke_vra::policy`]). [`AbrPolicyKind::Sperke`] routes to the
    /// full three-part Sperke planner (its richest form); every other
    /// kind runs through the tile-aware [`sperke_vra::PolicyVra`]
    /// wrapper with default planner tuning.
    pub fn abr_policy(mut self, kind: AbrPolicyKind) -> Self {
        self.player.planner = match kind {
            AbrPolicyKind::Sperke => PlannerKind::Sperke(SperkeConfig::default()),
            other => PlannerKind::Policy(other, SperkeConfig::default()),
        };
        self
    }

    /// Set the chunk duration (the paper's "one or two seconds").
    pub fn chunk_duration(mut self, d: SimDuration) -> Self {
        assert!(!d.is_zero());
        self.chunk_duration = d;
        self
    }

    /// Set the SVC layering overhead of the video's scalable encoding.
    pub fn svc_overhead(mut self, overhead: f64) -> Self {
        assert!(overhead >= 0.0);
        self.svc_overhead = overhead;
        self
    }

    /// Replace prediction with a perfect-HMP oracle (§3.1.2 part one:
    /// "let us assume that the HMP is perfect") — the upper bound every
    /// real predictor is judged against.
    pub fn with_oracle_hmp(mut self) -> Self {
        self.oracle_hmp = true;
        self
    }

    /// Enable the §3.2 cross-user popularity prior, built from an
    /// ensemble of `users` synthetic viewers of the same video.
    pub fn with_crowd(mut self, users: usize) -> Self {
        self.crowd_users = users;
        self
    }

    /// Enable the §3.2 per-user speed bound, learned from the viewer's
    /// own (synthetic) viewing history.
    pub fn with_speed_bound(mut self) -> Self {
        self.use_speed_bound = true;
        self
    }

    /// Materialize the video model this experiment streams.
    pub fn build_video(&self) -> VideoModel {
        VideoModelBuilder::new(self.seed)
            .duration(self.duration)
            .ladder(self.ladder.clone())
            .grid(sperke_geo::TileGrid::new(self.grid.0, self.grid.1))
            .svc_overhead(self.svc_overhead)
            .chunk_duration(self.chunk_duration)
            .build()
    }

    /// Materialize the viewer's head trace.
    pub fn build_trace(&self) -> HeadTrace {
        TraceGenerator::new(self.attention.clone(), self.behavior, self.context).generate(
            self.duration + SimDuration::from_secs(5),
            self.seed ^ 0x7ACE,
        )
    }

    /// Materialize the HMP forecaster (with crowd prior / speed bound /
    /// context as configured).
    pub fn build_forecaster(&self) -> FusedForecaster {
        let video = self.build_video();
        let mut forecaster = FusedForecaster::motion_only();
        forecaster.context = self.context;
        if self.crowd_users > 0 {
            let traces = generate_ensemble(
                &self.attention,
                self.crowd_users,
                self.duration,
                self.seed ^ 0xC40D,
            );
            let map = Heatmap::build(
                *video.grid(),
                video.chunk_duration(),
                video.chunk_count(),
                &traces,
            );
            forecaster = forecaster.with_heatmap(map);
        }
        if self.use_speed_bound {
            // Learn the bound from a prior session of the same viewer.
            let past = TraceGenerator::new(self.attention.clone(), self.behavior, self.context)
                .generate(SimDuration::from_secs(60), self.seed ^ 0x5EED);
            let bound = past.speed_percentile(95.0).max(0.1);
            forecaster = forecaster.with_speed_bound(bound);
        }
        forecaster
    }

    /// Run the experiment.
    pub fn run(&self) -> SessionResult {
        self.run_report().session
    }

    /// Run the experiment and return the [`RunReport`] carrying both the
    /// session result and the trace captured at the level set by
    /// [`Sperke::with_trace`].
    pub fn run_report(&self) -> RunReport {
        let video = self.build_video();
        let trace = self.build_trace();
        let sink = TraceSink::with_level(self.trace);
        let mut player = self.player.clone();
        player.trace = sink.clone();
        let rng = SimRng::new(self.seed ^ 0xBEEF);
        let paths: Vec<PathQueue> = self
            .paths
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let mut q = PathQueue::new(p.clone(), rng.split(i as u64))
                    .with_faults(self.faults.compile_for(i))
                    .with_loss_channel(self.loss_channel);
                if let Some(cfg) = &self.bbr {
                    q = q.with_bbr(cfg.clone());
                }
                q
            })
            .collect();

        macro_rules! go {
            ($abr:expr, $sched:expr, $forecaster:expr) => {
                run_session(&video, &trace, paths, $sched, $abr, $forecaster, &player)
            };
        }
        macro_rules! with_abr {
            ($sched:expr, $forecaster:expr) => {
                match self.abr {
                    AbrChoice::RateBased => go!(RateBased::default(), $sched, $forecaster),
                    AbrChoice::BufferBased => go!(BufferBased::default(), $sched, $forecaster),
                    AbrChoice::Mpc => go!(Mpc::default(), $sched, $forecaster),
                }
            };
        }
        macro_rules! with_sched {
            ($forecaster:expr) => {
                match self.scheduler {
                    SchedulerChoice::SinglePath => with_abr!(SinglePath(0), $forecaster),
                    SchedulerChoice::MinRtt => with_abr!(MinRtt, $forecaster),
                    SchedulerChoice::EarliestCompletion => {
                        with_abr!(EarliestCompletion, $forecaster)
                    }
                    SchedulerChoice::ContentAware => with_abr!(ContentAware, $forecaster),
                }
            };
        }
        let session = if self.oracle_hmp {
            let oracle = OracleForecaster::new(trace.clone());
            with_sched!(&oracle)
        } else {
            let forecaster = self.build_forecaster();
            with_sched!(&forecaster)
        };
        // `player` carries the last live clone of the sink; drop it so
        // `into_trace` takes the zero-copy move instead of a snapshot.
        drop(player);
        RunReport {
            session,
            trace: sink.into_trace(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_build_runs_cleanly() {
        let result = Sperke::builder(7)
            .duration(SimDuration::from_secs(10))
            .run();
        assert_eq!(result.qoe.chunks, 10);
        assert!(result.qoe.bytes_fetched > 0);
    }

    #[test]
    fn builder_is_deterministic() {
        let mk = || {
            Sperke::builder(3)
                .duration(SimDuration::from_secs(8))
                .single_link(15e6)
                .run()
        };
        assert_eq!(mk().qoe, mk().qoe);
    }

    #[test]
    fn fov_agnostic_fetches_more() {
        let base = Sperke::builder(5)
            .duration(SimDuration::from_secs(10))
            .single_link(40e6);
        let guided = base.clone().run();
        let agnostic = base.fov_agnostic().run();
        assert!(agnostic.qoe.bytes_fetched > guided.qoe.bytes_fetched);
    }

    #[test]
    fn multipath_uses_both_paths() {
        let r = Sperke::builder(9)
            .duration(SimDuration::from_secs(10))
            .wifi_plus_lte()
            .scheduler(SchedulerChoice::ContentAware)
            .run();
        assert_eq!(r.path_bytes.len(), 2);
        assert!(r.path_bytes[0] > 0);
        assert_eq!(r.scheduler, "content-aware");
    }

    #[test]
    fn all_abr_choices_run() {
        for abr in [AbrChoice::RateBased, AbrChoice::BufferBased, AbrChoice::Mpc] {
            let r = Sperke::builder(11)
                .duration(SimDuration::from_secs(6))
                .abr(abr)
                .run();
            assert_eq!(r.qoe.chunks, 6);
        }
    }

    #[test]
    fn oracle_hmp_is_an_upper_bound() {
        let base = Sperke::builder(19)
            .duration(SimDuration::from_secs(15))
            .behavior(Behavior::Explorer)
            .single_link(25e6);
        let real = base.clone().run();
        let oracle = base.with_oracle_hmp().run();
        assert!(
            oracle.qoe.mean_blank_fraction <= real.qoe.mean_blank_fraction + 1e-9,
            "oracle blanks ({:.3}) must not exceed real HMP ({:.3})",
            oracle.qoe.mean_blank_fraction,
            real.qoe.mean_blank_fraction
        );
        assert!(
            oracle.qoe.mean_blank_fraction < 0.02,
            "perfect HMP ~never blanks"
        );
    }

    #[test]
    fn run_report_traces_deterministically() {
        let mk = || {
            Sperke::builder(21)
                .duration(SimDuration::from_secs(6))
                .wifi_plus_lte()
                .scheduler(SchedulerChoice::ContentAware)
                .with_trace(TraceLevel::Verbose)
                .run_report()
        };
        let a = mk();
        let b = mk();
        assert!(!a.trace.is_empty(), "tracing captures events");
        assert_eq!(
            a.to_jsonl(),
            b.to_jsonl(),
            "same seed, byte-identical JSONL"
        );
        assert_eq!(a.trace_digest(), b.trace_digest());
        assert_eq!(a.session.qoe, b.session.qoe);
    }

    #[test]
    fn untraced_run_report_is_empty_and_cheap() {
        let r = Sperke::builder(21)
            .duration(SimDuration::from_secs(4))
            .run_report();
        assert!(r.trace.is_empty());
        assert_eq!(r.trace.dropped(), 0);
        // A disabled trace still produces a stable digest (of nothing).
        assert_eq!(r.trace_digest(), r.trace_digest());
    }

    #[test]
    fn trace_level_gates_event_volume() {
        let at = |level: TraceLevel| {
            Sperke::builder(33)
                .duration(SimDuration::from_secs(6))
                .with_trace(level)
                .run_report()
                .trace
                .len()
        };
        let events = at(TraceLevel::Events);
        let decisions = at(TraceLevel::Decisions);
        assert!(
            decisions > events,
            "higher levels record strictly more ({events} vs {decisions})"
        );
    }

    #[test]
    fn fault_script_degrades_the_session() {
        use sperke_sim::SimTime;
        let base = Sperke::builder(17)
            .duration(SimDuration::from_secs(12))
            .single_link(25e6);
        let clean = base.clone().run();
        let faulted = base
            .with_faults(FaultScript::none().link_down(
                0,
                SimTime::from_secs(4),
                SimTime::from_secs(8),
            ))
            .run();
        assert!(
            faulted.qoe.mean_blank_fraction > clean.qoe.mean_blank_fraction,
            "an outage must cost screen area: faulted {} vs clean {}",
            faulted.qoe.mean_blank_fraction,
            clean.qoe.mean_blank_fraction
        );
        assert!(faulted.qoe.score < clean.qoe.score);
    }

    #[test]
    fn resilience_and_fallback_soften_an_outage() {
        use sperke_sim::SimTime;
        let faulty = || {
            Sperke::builder(23)
                .duration(SimDuration::from_secs(12))
                .paths(vec![
                    PathModel::new(
                        "wifi",
                        BandwidthTrace::constant(40e6),
                        SimDuration::from_millis(15),
                        0.0,
                    ),
                    PathModel::new(
                        "lte",
                        BandwidthTrace::constant(10e6),
                        SimDuration::from_millis(60),
                        0.0,
                    ),
                ])
                .scheduler(SchedulerChoice::ContentAware)
                .with_faults(FaultScript::none().link_down(
                    0,
                    SimTime::from_secs(4),
                    SimTime::from_secs(9),
                ))
        };
        let naive = faulty().run();
        let hardened = faulty()
            .with_resilience(RecoveryPolicy::default())
            .with_fallback()
            .run();
        assert!(
            hardened.qoe.mean_blank_fraction < naive.qoe.mean_blank_fraction,
            "failover + fall-back shrink the blank area: hardened {} vs naive {}",
            hardened.qoe.mean_blank_fraction,
            naive.qoe.mean_blank_fraction
        );
        assert!(hardened.qoe.score > naive.qoe.score);
    }

    #[test]
    fn vis_cache_never_changes_outcomes() {
        let base = || {
            Sperke::builder(31)
                .duration(SimDuration::from_secs(8))
                .wifi_plus_lte()
                .scheduler(SchedulerChoice::ContentAware)
                .with_trace(TraceLevel::Verbose)
        };
        let cached = base().with_vis_cache(64).run_report();
        let uncached = base().without_vis_cache().run_report();
        assert_eq!(
            cached.to_jsonl(),
            uncached.to_jsonl(),
            "events byte-identical"
        );
        assert_eq!(cached.trace_digest(), uncached.trace_digest());
        assert_eq!(
            cached.session.qoe.score.to_bits(),
            uncached.session.qoe.score.to_bits(),
            "QoE must be bit-identical with and without the cache"
        );
        assert_eq!(cached.session.qoe, uncached.session.qoe);
        // The counters land in the metrics registry (events/digest are
        // untouched: metrics are not part of the trace JSONL). Hits
        // within one session may be zero — every mid-chunk gaze is a
        // distinct bit pattern — but the counters must be flushed.
        let m = cached.trace.metrics();
        assert!(m.counter_value("vis_cache_miss").unwrap_or(0) > 0);
        assert!(m.counter_value("vis_cache_hit").is_some());
        assert_eq!(
            uncached.trace.metrics().counter_value("vis_cache_miss"),
            Some(0)
        );
    }

    #[test]
    fn shared_vis_cache_hits_across_runs_without_drift() {
        let cache = sperke_geo::VisibilityCache::new(512);
        let mk = || {
            Sperke::builder(41)
                .duration(SimDuration::from_secs(6))
                .vis_cache(cache.clone())
                .run_report()
        };
        let first = mk();
        let misses_after_first = cache.stats().misses;
        let second = mk();
        assert!(misses_after_first > 0, "first run populates the memo");
        assert!(
            cache.stats().hits >= misses_after_first,
            "an identical rerun replays from the memo"
        );
        assert_eq!(first.session.qoe, second.session.qoe);
    }

    #[test]
    fn every_abr_policy_runs_through_the_builder() {
        for kind in AbrPolicyKind::all() {
            let r = Sperke::builder(7)
                .duration(SimDuration::from_secs(6))
                .abr_policy(kind)
                .run();
            assert_eq!(r.qoe.chunks, 6, "{} died", kind.name());
        }
    }

    #[test]
    fn crowd_and_speed_bound_compose() {
        let r = Sperke::builder(13)
            .duration(SimDuration::from_secs(8))
            .with_crowd(6)
            .with_speed_bound()
            .run();
        assert_eq!(r.qoe.chunks, 8);
    }
}
