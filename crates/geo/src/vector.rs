//! Minimal 3-vector math for spherical geometry.

use serde::{Deserialize, Serialize};
use std::ops::{Add, Mul, Neg, Sub};

/// A 3-component vector (right-handed coordinate system).
///
/// Convention throughout Sperke (matching the paper's Figure 1): `+X`
/// points at the panorama's yaw-0 "front", `+Y` to the viewer's left
/// (yaw +90°), `+Z` up.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// Forward component.
    pub x: f64,
    /// Left component.
    pub y: f64,
    /// Up component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit X ("front").
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit Y ("left").
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit Z ("up").
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Construct from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Vec3 {
        Vec3 { x, y, z }
    }

    /// Dot product.
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product (right-handed).
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }

    /// Euclidean length.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Unit vector in the same direction; `Vec3::X` for (near-)zero input.
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n < 1e-12 {
            Vec3::X
        } else {
            self * (1.0 / n)
        }
    }

    /// Angle between two vectors in radians, in `[0, π]`.
    pub fn angle_to(self, other: Vec3) -> f64 {
        let d = self.normalized().dot(other.normalized()).clamp(-1.0, 1.0);
        d.acos()
    }

    /// Linear interpolation (not spherical).
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self * (1.0 - t) + other * t
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_cross_of_axes() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn norm_and_normalize() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm(), 5.0);
        let u = v.normalized();
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::X);
    }

    #[test]
    fn angle_between_axes_is_right() {
        assert!((Vec3::X.angle_to(Vec3::Y) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((Vec3::X.angle_to(-Vec3::X) - std::f64::consts::PI).abs() < 1e-12);
        assert_eq!(Vec3::X.angle_to(Vec3::X), 0.0);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(0.5, 0.5, 0.0));
    }
}
