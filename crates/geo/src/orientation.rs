//! Head orientation: Euler angles (yaw/pitch/roll, Figure 1 of the
//! paper), unit quaternions, and interpolation.

use crate::angles::{angle_dist, wrap_pi};
use crate::vector::Vec3;
use serde::{Deserialize, Serialize};
use std::f64::consts::FRAC_PI_2;

/// A viewing orientation as intrinsic Euler angles, in radians.
///
/// * `yaw` — rotation about the vertical (+Z) axis; 0 faces +X, positive
///   turns left (towards +Y). Wrapped to `[-π, π)`.
/// * `pitch` — elevation; positive looks up. Clamped to `[-π/2, π/2]`.
/// * `roll` — rotation about the view axis; affects the viewport's edges
///   but not its centre direction.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Orientation {
    /// Yaw about +Z in radians, `[-π, π)`.
    pub yaw: f64,
    /// Pitch (elevation) in radians, `[-π/2, π/2]`.
    pub pitch: f64,
    /// Roll about the view axis in radians.
    pub roll: f64,
}

impl Orientation {
    /// Facing the panorama front (+X), level, no roll.
    pub const FRONT: Orientation = Orientation {
        yaw: 0.0,
        pitch: 0.0,
        roll: 0.0,
    };

    /// Construct, normalizing yaw to `[-π, π)` and clamping pitch.
    pub fn new(yaw: f64, pitch: f64, roll: f64) -> Orientation {
        Orientation {
            yaw: wrap_pi(yaw),
            pitch: pitch.clamp(-FRAC_PI_2, FRAC_PI_2),
            roll: wrap_pi(roll),
        }
    }

    /// Construct from degrees.
    pub fn from_degrees(yaw: f64, pitch: f64, roll: f64) -> Orientation {
        Orientation::new(yaw.to_radians(), pitch.to_radians(), roll.to_radians())
    }

    /// The unit view direction.
    pub fn direction(&self) -> Vec3 {
        let cp = self.pitch.cos();
        Vec3::new(cp * self.yaw.cos(), cp * self.yaw.sin(), self.pitch.sin())
    }

    /// Build the orientation whose view direction is `dir` (roll = 0).
    pub fn looking_at(dir: Vec3) -> Orientation {
        let d = dir.normalized();
        Orientation::new(d.y.atan2(d.x), d.z.clamp(-1.0, 1.0).asin(), 0.0)
    }

    /// Great-circle angle between the view directions of two
    /// orientations, in radians `[0, π]`. Ignores roll.
    pub fn angular_distance(&self, other: &Orientation) -> f64 {
        self.direction().angle_to(other.direction())
    }

    /// The camera basis `(forward, left, up)` including roll.
    pub fn basis(&self) -> (Vec3, Vec3, Vec3) {
        let f = self.direction();
        // Un-rolled left/up.
        let left0 = Vec3::new(-self.yaw.sin(), self.yaw.cos(), 0.0);
        let up0 = f.cross(left0).normalized(); // forward × left = up (X × Y = Z)
                                               // Apply roll: rotate left/up around the forward axis.
        let (s, c) = self.roll.sin_cos();
        let left = left0 * c + up0 * s;
        let up = up0 * c - left0 * s;
        (f, left, up)
    }

    /// Spherical interpolation between two orientations (component-wise
    /// on the shortest yaw arc; adequate for head-movement traces where
    /// successive samples are close).
    pub fn slerp(&self, other: &Orientation, t: f64) -> Orientation {
        let t = t.clamp(0.0, 1.0);
        let dyaw = wrap_pi(other.yaw - self.yaw);
        let dpitch = other.pitch - self.pitch;
        let droll = wrap_pi(other.roll - self.roll);
        Orientation::new(
            self.yaw + dyaw * t,
            self.pitch + dpitch * t,
            self.roll + droll * t,
        )
    }

    /// Yaw distance to another orientation (wrapped absolute), radians.
    pub fn yaw_distance(&self, other: &Orientation) -> f64 {
        angle_dist(self.yaw, other.yaw)
    }
}

/// A unit quaternion, used where composition of rotations is needed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quat {
    /// Scalar part.
    pub w: f64,
    /// Vector part x.
    pub x: f64,
    /// Vector part y.
    pub y: f64,
    /// Vector part z.
    pub z: f64,
}

impl Quat {
    /// The identity rotation.
    pub const IDENTITY: Quat = Quat {
        w: 1.0,
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Rotation of `angle` radians about `axis`.
    pub fn from_axis_angle(axis: Vec3, angle: f64) -> Quat {
        let a = axis.normalized();
        let (s, c) = (angle / 2.0).sin_cos();
        Quat {
            w: c,
            x: a.x * s,
            y: a.y * s,
            z: a.z * s,
        }
    }

    /// Quaternion for an [`Orientation`] (yaw about Z, then pitch about
    /// the rotated -Y/left axis, then roll about the view axis).
    pub fn from_orientation(o: &Orientation) -> Quat {
        let qyaw = Quat::from_axis_angle(Vec3::Z, o.yaw);
        let left = qyaw.rotate(Vec3::Y);
        // Positive pitch looks *up*: a right-hand rotation about the left
        // axis tilts the view down, hence the negated angle.
        let qpitch = Quat::from_axis_angle(left, -o.pitch);
        let fwd = (qpitch * qyaw).rotate(Vec3::X);
        let qroll = Quat::from_axis_angle(fwd, o.roll);
        qroll * qpitch * qyaw
    }

    /// Hamilton product: `self * other` applies `other` first.
    #[allow(clippy::should_implement_trait)] // also provided via ops::Mul below
    pub fn mul(self, o: Quat) -> Quat {
        Quat {
            w: self.w * o.w - self.x * o.x - self.y * o.y - self.z * o.z,
            x: self.w * o.x + self.x * o.w + self.y * o.z - self.z * o.y,
            y: self.w * o.y - self.x * o.z + self.y * o.w + self.z * o.x,
            z: self.w * o.z + self.x * o.y - self.y * o.x + self.z * o.w,
        }
    }

    /// Conjugate (inverse for unit quaternions).
    pub fn conj(self) -> Quat {
        Quat {
            w: self.w,
            x: -self.x,
            y: -self.y,
            z: -self.z,
        }
    }

    /// Normalize to unit length.
    pub fn normalized(self) -> Quat {
        let n = (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt();
        if n < 1e-12 {
            Quat::IDENTITY
        } else {
            Quat {
                w: self.w / n,
                x: self.x / n,
                y: self.y / n,
                z: self.z / n,
            }
        }
    }

    /// Rotate a vector.
    pub fn rotate(self, v: Vec3) -> Vec3 {
        let qv = Quat {
            w: 0.0,
            x: v.x,
            y: v.y,
            z: v.z,
        };
        let r = self.mul(qv).mul(self.conj());
        Vec3::new(r.x, r.y, r.z)
    }

    /// Rotation angle between two unit quaternions, radians `[0, π]`.
    pub fn angle_to(self, other: Quat) -> f64 {
        let d = self.conj().mul(other).normalized();
        2.0 * d.w.abs().clamp(0.0, 1.0).acos()
    }
}

impl std::ops::Mul for Quat {
    type Output = Quat;
    fn mul(self, rhs: Quat) -> Quat {
        Quat::mul(self, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angles::deg;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn direction_of_cardinal_orientations() {
        let front = Orientation::FRONT.direction();
        assert!(close(front.x, 1.0) && close(front.y, 0.0) && close(front.z, 0.0));
        let left = Orientation::new(deg(90.0), 0.0, 0.0).direction();
        assert!(close(left.y, 1.0));
        let up = Orientation::new(0.0, deg(90.0), 0.0).direction();
        assert!(close(up.z, 1.0));
    }

    #[test]
    fn looking_at_inverts_direction() {
        for (yaw, pitch) in [(0.3, 0.2), (-2.0, -0.7), (3.0, 1.2)] {
            let o = Orientation::new(yaw, pitch, 0.0);
            let back = Orientation::looking_at(o.direction());
            assert!(close(back.yaw, o.yaw), "yaw {} vs {}", back.yaw, o.yaw);
            assert!(close(back.pitch, o.pitch));
        }
    }

    #[test]
    fn angular_distance_symmetric_and_sane() {
        let a = Orientation::from_degrees(0.0, 0.0, 0.0);
        let b = Orientation::from_degrees(90.0, 0.0, 0.0);
        assert!(close(a.angular_distance(&b), deg(90.0)));
        assert!(close(b.angular_distance(&a), deg(90.0)));
        assert!(close(a.angular_distance(&a), 0.0));
    }

    #[test]
    fn pitch_is_clamped_yaw_is_wrapped() {
        let o = Orientation::new(deg(370.0), deg(120.0), 0.0);
        assert!(close(o.yaw, deg(10.0)));
        assert!(close(o.pitch, deg(90.0)));
    }

    #[test]
    fn slerp_midpoint_across_wraparound() {
        let a = Orientation::from_degrees(170.0, 0.0, 0.0);
        let b = Orientation::from_degrees(-170.0, 0.0, 0.0);
        let mid = a.slerp(&b, 0.5);
        // midpoint should be at 180°, i.e. -180 after wrap
        assert!(close(mid.yaw.abs(), deg(180.0)), "mid.yaw = {}", mid.yaw);
    }

    #[test]
    fn slerp_endpoints() {
        let a = Orientation::from_degrees(10.0, 20.0, 0.0);
        let b = Orientation::from_degrees(50.0, -10.0, 0.0);
        assert_eq!(a.slerp(&b, 0.0), a);
        let e = a.slerp(&b, 1.0);
        assert!(close(e.yaw, b.yaw) && close(e.pitch, b.pitch));
    }

    #[test]
    fn quat_rotates_axes() {
        let q = Quat::from_axis_angle(Vec3::Z, deg(90.0));
        let r = q.rotate(Vec3::X);
        assert!(close(r.y, 1.0) && close(r.x, 0.0));
    }

    #[test]
    fn quat_from_orientation_matches_direction() {
        for (yaw, pitch, roll) in [(0.5, 0.3, 0.0), (-1.2, -0.4, 0.7), (2.8, 1.0, -1.0)] {
            let o = Orientation::new(yaw, pitch, roll);
            let q = Quat::from_orientation(&o);
            let dir = q.rotate(Vec3::X);
            let want = o.direction();
            assert!(
                (dir - want).norm() < 1e-9,
                "mismatch at {yaw},{pitch},{roll}"
            );
        }
    }

    #[test]
    fn quat_angle_between() {
        let a = Quat::from_axis_angle(Vec3::Z, 0.0);
        let b = Quat::from_axis_angle(Vec3::Z, deg(60.0));
        assert!(close(a.angle_to(b), deg(60.0)));
    }

    #[test]
    fn basis_is_orthonormal() {
        for roll in [0.0, 0.5, -1.0] {
            let o = Orientation::new(0.7, 0.4, roll);
            let (f, l, u) = o.basis();
            assert!(close(f.norm(), 1.0));
            assert!(close(l.norm(), 1.0));
            assert!(close(u.norm(), 1.0));
            assert!(f.dot(l).abs() < 1e-9);
            assert!(f.dot(u).abs() < 1e-9);
            assert!(l.dot(u).abs() < 1e-9);
        }
    }

    #[test]
    fn basis_up_points_up_when_level() {
        let (_, _, u) = Orientation::FRONT.basis();
        assert!(close(u.z, 1.0), "up = {u:?}");
    }
}
