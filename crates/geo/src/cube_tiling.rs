//! Cube-face tiling: an alternative spatial segmentation.
//!
//! Equirectangular tiling (the [`TileGrid`](crate::tiling::TileGrid)
//! default) wastes resolution at the poles; §2's related work cites
//! "novel tile segmentation scheme\[s\] for omnidirectional video" \[33\]
//! that segment on cube faces instead, where every tile covers a
//! comparable solid angle. [`CubeTileGrid`] splits each of the six cube
//! faces into `k × k` tiles.

use crate::projection::{CubeFace, CubeMap, Uv};
use crate::tiling::TileId;
use crate::vector::Vec3;
use crate::viewport::Viewport;
use serde::{Deserialize, Serialize};

/// A `6 × k × k` tiling over the cube map.
///
/// Tiles are numbered face-major in [`CubeFace::ALL`] order, row-major
/// within a face; ids are compatible with [`TileId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CubeTileGrid {
    /// Tiles per face edge (`k`); a face holds `k²` tiles.
    pub per_edge: u16,
}

impl CubeTileGrid {
    /// Construct; panics on zero or on overflowing [`TileId`].
    pub fn new(per_edge: u16) -> CubeTileGrid {
        assert!(per_edge > 0, "need at least one tile per edge");
        let total = 6u32 * per_edge as u32 * per_edge as u32;
        assert!(total <= u16::MAX as u32 + 1, "too many tiles for TileId");
        CubeTileGrid { per_edge }
    }

    /// Total number of tiles.
    pub fn tile_count(&self) -> usize {
        6 * self.per_edge as usize * self.per_edge as usize
    }

    /// All tile ids.
    pub fn tiles(&self) -> impl Iterator<Item = TileId> {
        (0..self.tile_count() as u16).map(TileId)
    }

    /// `(face, row, col)` of a tile id.
    pub fn position(&self, id: TileId) -> (CubeFace, u16, u16) {
        let k = self.per_edge as usize;
        let idx = id.index();
        assert!(idx < self.tile_count(), "tile id out of range");
        let face = CubeFace::ALL[idx / (k * k)];
        let within = idx % (k * k);
        (face, (within / k) as u16, (within % k) as u16)
    }

    /// Tile id at `(face, row, col)`.
    pub fn id_at(&self, face: CubeFace, row: u16, col: u16) -> TileId {
        assert!(row < self.per_edge && col < self.per_edge);
        let k = self.per_edge as usize;
        let f = CubeFace::ALL
            .iter()
            .position(|&g| g == face)
            .expect("known face");
        TileId((f * k * k + row as usize * k + col as usize) as u16)
    }

    /// The tile containing a world direction.
    pub fn tile_of_direction(&self, dir: Vec3) -> TileId {
        let (face, uv) = CubeMap::project(dir);
        let k = self.per_edge as f64;
        let col = ((uv.u.clamp(0.0, 1.0 - 1e-12)) * k) as u16;
        let row = ((uv.v.clamp(0.0, 1.0 - 1e-12)) * k) as u16;
        self.id_at(face, row.min(self.per_edge - 1), col.min(self.per_edge - 1))
    }

    /// The world direction at a tile's centre.
    pub fn tile_center(&self, id: TileId) -> Vec3 {
        let (face, row, col) = self.position(id);
        let k = self.per_edge as f64;
        CubeMap::unproject(
            face,
            Uv {
                u: (col as f64 + 0.5) / k,
                v: (row as f64 + 0.5) / k,
            },
        )
    }

    /// The solid angle of a tile, estimated by sampling `s × s` points
    /// on the face square and accumulating their differential areas.
    pub fn solid_angle(&self, id: TileId, s: usize) -> f64 {
        assert!(s >= 2);
        let (face, row, col) = self.position(id);
        let k = self.per_edge as f64;
        let mut total = 0.0;
        let cell = 1.0 / (k * s as f64); // uv step within the tile
        for iy in 0..s {
            for ix in 0..s {
                let u = (col as f64 + (ix as f64 + 0.5) / s as f64) / k;
                let v = (row as f64 + (iy as f64 + 0.5) / s as f64) / k;
                // dΩ for a cube-face patch: the face spans [-1,1]² on a
                // plane at distance 1; dΩ = dA / r³ with r = |(x,y,1)|.
                let x = u * 2.0 - 1.0;
                let y = v * 2.0 - 1.0;
                let r2 = x * x + y * y + 1.0;
                let da = (2.0 * cell) * (2.0 * cell);
                total += da / r2.powf(1.5);
                let _ = face;
            }
        }
        total
    }

    /// Which tiles a viewport sees, with screen-coverage fractions
    /// (sampled ray grid; fractions sum to 1).
    pub fn visible_tiles(&self, vp: &Viewport, samples: u32) -> Vec<(TileId, f64)> {
        assert!(samples >= 2);
        let mut counts = vec![0u32; self.tile_count()];
        for iy in 0..samples {
            for ix in 0..samples {
                let sx = (ix as f64 + 0.5) / samples as f64 * 2.0 - 1.0;
                let sy = (iy as f64 + 0.5) / samples as f64 * 2.0 - 1.0;
                counts[self.tile_of_direction(vp.ray(sx, sy)).index()] += 1;
            }
        }
        let total = (samples * samples) as f64;
        let mut out: Vec<(TileId, f64)> = counts
            .into_iter()
            .enumerate()
            .filter(|&(_, c)| c > 0)
            .map(|(i, c)| (TileId(i as u16), c as f64 / total))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN").then(a.0.cmp(&b.0)));
        out
    }

    /// The ratio of the largest to the smallest tile solid angle — the
    /// uniformity advantage over equirect tiling (1 = perfectly even).
    pub fn solid_angle_spread(&self, samples: usize) -> f64 {
        let angles: Vec<f64> = self.tiles().map(|t| self.solid_angle(t, samples)).collect();
        let max = angles.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = angles.iter().cloned().fold(f64::INFINITY, f64::min);
        max / min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orientation::Orientation;
    use crate::tiling::TileGrid;
    use std::f64::consts::PI;

    #[test]
    fn counts_and_positions() {
        let g = CubeTileGrid::new(2);
        assert_eq!(g.tile_count(), 24);
        let id = g.id_at(CubeFace::Left, 1, 0);
        assert_eq!(g.position(id), (CubeFace::Left, 1, 0));
    }

    #[test]
    fn direction_roundtrips_through_center() {
        let g = CubeTileGrid::new(3);
        for t in g.tiles() {
            assert_eq!(g.tile_of_direction(g.tile_center(t)), t);
        }
    }

    #[test]
    fn solid_angles_sum_to_sphere() {
        let g = CubeTileGrid::new(2);
        let total: f64 = g.tiles().map(|t| g.solid_angle(t, 16)).sum();
        assert!(
            (total - 4.0 * PI).abs() / (4.0 * PI) < 0.01,
            "total {total} vs {}",
            4.0 * PI
        );
    }

    #[test]
    fn cube_tiles_are_more_uniform_than_equirect() {
        // The whole point of cube tiling (§2 [33]): per-tile solid angle
        // varies far less than equirect rows near the poles.
        let cube = CubeTileGrid::new(2); // 24 tiles
        let equi = TileGrid::new(4, 6); // 24 tiles
        let cube_spread = cube.solid_angle_spread(16);
        let equi_angles: Vec<f64> = equi.tiles().map(|t| equi.rect(t).solid_angle()).collect();
        let equi_spread = equi_angles
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
            / equi_angles.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            cube_spread < equi_spread / 1.5,
            "cube spread {cube_spread:.2} vs equirect {equi_spread:.2}"
        );
        assert!(
            cube_spread < 2.5,
            "cube tiles near-uniform: {cube_spread:.2}"
        );
    }

    #[test]
    fn viewport_coverage_sums_to_one() {
        let g = CubeTileGrid::new(3);
        let vp = Viewport::headset(Orientation::from_degrees(25.0, -10.0, 5.0));
        let vis = g.visible_tiles(&vp, 24);
        let sum: f64 = vis.iter().map(|&(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(!vis.is_empty());
        assert!(vis.len() < g.tile_count(), "FoV must not see everything");
    }

    #[test]
    fn gaze_tile_always_visible() {
        let g = CubeTileGrid::new(3);
        for yaw in [-150.0f64, -60.0, 0.0, 80.0, 170.0] {
            let o = Orientation::from_degrees(yaw, 15.0, 0.0);
            let vp = Viewport::headset(o);
            let gaze_tile = g.tile_of_direction(o.direction());
            assert!(
                g.visible_tiles(&vp, 16)
                    .iter()
                    .any(|&(t, _)| t == gaze_tile),
                "yaw {yaw}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn zero_per_edge_rejected() {
        CubeTileGrid::new(0);
    }
}
