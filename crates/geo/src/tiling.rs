//! Spatial segmentation of the panorama into tiles (§2 "Tiling").
//!
//! Sperke segments the equirectangular frame into a `rows × cols` grid.
//! A [`TileId`] indexes a tile; [`TileGrid`] maps between tile ids,
//! angular extents, and texture coordinates.

use crate::angles::wrap_tau;
use crate::projection::{Equirect, Uv};
use crate::vector::Vec3;
use serde::{Deserialize, Serialize};
use std::f64::consts::{FRAC_PI_2, PI, TAU};

/// Identifier of one tile within a [`TileGrid`], row-major.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TileId(pub u16);

impl TileId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// The angular extent of a tile: yaw span `[yaw_min, yaw_max)` (may wrap)
/// and pitch span `[pitch_min, pitch_max]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TileRect {
    /// Western yaw edge, radians in `[-π, π)`.
    pub yaw_min: f64,
    /// Eastern yaw edge, radians (yaw_min + span, may exceed π before wrap).
    pub yaw_max: f64,
    /// Lower pitch edge, radians.
    pub pitch_min: f64,
    /// Upper pitch edge, radians.
    pub pitch_max: f64,
}

impl TileRect {
    /// Yaw span, radians.
    pub fn yaw_span(&self) -> f64 {
        self.yaw_max - self.yaw_min
    }

    /// Pitch span, radians.
    pub fn pitch_span(&self) -> f64 {
        self.pitch_max - self.pitch_min
    }

    /// The solid angle subtended by this tile, steradians.
    pub fn solid_angle(&self) -> f64 {
        self.yaw_span() * (self.pitch_max.sin() - self.pitch_min.sin())
    }
}

/// A regular `rows × cols` tiling of the equirectangular panorama.
///
/// The paper's prototype uses **2×4**; its tiling-related citations use
/// 4×6. Rows split pitch `[−π/2, π/2]` top-to-bottom; columns split yaw
/// `[−π, π)` west-to-east. Tiles are numbered row-major starting at the
/// top-left (north-west).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileGrid {
    /// Number of pitch bands.
    pub rows: u16,
    /// Number of yaw sectors.
    pub cols: u16,
}

impl TileGrid {
    /// Construct; panics on a degenerate grid.
    pub fn new(rows: u16, cols: u16) -> TileGrid {
        assert!(rows > 0 && cols > 0, "grid must be non-empty");
        assert!(
            (rows as u32) * (cols as u32) <= u16::MAX as u32 + 1,
            "too many tiles for TileId"
        );
        TileGrid { rows, cols }
    }

    /// The paper prototype's 2×4 grid (§3.5).
    pub fn sperke_prototype() -> TileGrid {
        TileGrid::new(2, 4)
    }

    /// Total number of tiles.
    pub fn tile_count(&self) -> usize {
        self.rows as usize * self.cols as usize
    }

    /// All tile ids, row-major.
    pub fn tiles(&self) -> impl Iterator<Item = TileId> {
        (0..self.tile_count() as u16).map(TileId)
    }

    /// `(row, col)` of a tile id.
    pub fn position(&self, id: TileId) -> (u16, u16) {
        let idx = id.0;
        assert!((idx as usize) < self.tile_count(), "tile id out of range");
        (idx / self.cols, idx % self.cols)
    }

    /// Tile id at `(row, col)`.
    pub fn id_at(&self, row: u16, col: u16) -> TileId {
        assert!(row < self.rows && col < self.cols, "position out of range");
        TileId(row * self.cols + col)
    }

    /// Angular extent of a tile.
    pub fn rect(&self, id: TileId) -> TileRect {
        let (row, col) = self.position(id);
        let yaw_step = TAU / self.cols as f64;
        let pitch_step = PI / self.rows as f64;
        let yaw_min = -PI + col as f64 * yaw_step;
        // Row 0 is the top band (highest pitch).
        let pitch_max = FRAC_PI_2 - row as f64 * pitch_step;
        TileRect {
            yaw_min,
            yaw_max: yaw_min + yaw_step,
            pitch_min: pitch_max - pitch_step,
            pitch_max,
        }
    }

    /// The tile containing a view direction.
    pub fn tile_of_direction(&self, dir: Vec3) -> TileId {
        self.tile_of_uv(Equirect::project(dir))
    }

    /// The tile containing normalized texture coordinates.
    pub fn tile_of_uv(&self, uv: Uv) -> TileId {
        let col = ((uv.u.clamp(0.0, 1.0 - 1e-12)) * self.cols as f64) as u16;
        let row = ((uv.v.clamp(0.0, 1.0 - 1e-12)) * self.rows as f64) as u16;
        self.id_at(row.min(self.rows - 1), col.min(self.cols - 1))
    }

    /// The tile containing yaw/pitch angles (radians).
    pub fn tile_of_angles(&self, yaw: f64, pitch: f64) -> TileId {
        let u = wrap_tau(yaw + PI) / TAU;
        let v = ((FRAC_PI_2 - pitch.clamp(-FRAC_PI_2, FRAC_PI_2)) / PI).clamp(0.0, 1.0);
        self.tile_of_uv(Uv { u, v })
    }

    /// The unit direction at a tile's angular centre.
    pub fn tile_center(&self, id: TileId) -> Vec3 {
        let r = self.rect(id);
        let yaw = (r.yaw_min + r.yaw_max) / 2.0;
        let pitch = (r.pitch_min + r.pitch_max) / 2.0;
        Vec3::new(
            pitch.cos() * yaw.cos(),
            pitch.cos() * yaw.sin(),
            pitch.sin(),
        )
    }

    /// Great-circle distance from a direction to a tile's centre, radians.
    pub fn distance_to_tile(&self, dir: Vec3, id: TileId) -> f64 {
        dir.angle_to(self.tile_center(id))
    }

    /// Ring distance between two tiles: Chebyshev distance on the grid
    /// with yaw wraparound (used by OOS policies to order tiles by
    /// "how far out of sight").
    pub fn grid_distance(&self, a: TileId, b: TileId) -> u16 {
        let (ra, ca) = self.position(a);
        let (rb, cb) = self.position(b);
        let dr = ra.abs_diff(rb);
        let dc_raw = ca.abs_diff(cb);
        let dc = dc_raw.min(self.cols - dc_raw);
        dr.max(dc)
    }

    /// Tiles whose grid distance from `center` is at most `radius`,
    /// including `center` itself. Ordered by distance then id.
    pub fn neighborhood(&self, center: TileId, radius: u16) -> Vec<TileId> {
        let mut out: Vec<(u16, TileId)> = self
            .tiles()
            .map(|t| (self.grid_distance(center, t), t))
            .filter(|&(d, _)| d <= radius)
            .collect();
        out.sort();
        out.into_iter().map(|(_, t)| t).collect()
    }
}

/// Precomputed tile-centre directions for one grid.
///
/// [`TileGrid::tile_center`] spends four trig calls per query, and
/// forecast scoring asks for every tile's centre once per (client,
/// chunk) — at fleet scale that is millions of redundant evaluations of
/// the same `rows × cols` values. The table stores the exact
/// `tile_center` outputs, so anything derived from it (notably
/// [`TileCenters::distance_to_tile`]) is bit-identical to the on-demand
/// formulation.
#[derive(Debug, Clone)]
pub struct TileCenters {
    grid: TileGrid,
    centers: Vec<Vec3>,
}

impl TileCenters {
    /// Tabulate every tile centre of `grid`.
    pub fn new(grid: TileGrid) -> TileCenters {
        let centers = grid.tiles().map(|t| grid.tile_center(t)).collect();
        TileCenters { grid, centers }
    }

    /// The grid the table was built for.
    pub fn grid(&self) -> TileGrid {
        self.grid
    }

    /// The unit direction at a tile's angular centre; equals
    /// [`TileGrid::tile_center`] exactly.
    pub fn center(&self, id: TileId) -> Vec3 {
        self.centers[id.index()]
    }

    /// Great-circle distance from a direction to a tile's centre,
    /// radians; bit-identical to [`TileGrid::distance_to_tile`].
    pub fn distance_to_tile(&self, dir: Vec3, id: TileId) -> f64 {
        dir.angle_to(self.centers[id.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angles::deg;
    use crate::orientation::Orientation;

    #[test]
    fn count_and_positions() {
        let g = TileGrid::new(2, 4);
        assert_eq!(g.tile_count(), 8);
        assert_eq!(g.position(TileId(0)), (0, 0));
        assert_eq!(g.position(TileId(5)), (1, 1));
        assert_eq!(g.id_at(1, 3), TileId(7));
    }

    #[test]
    fn rects_tile_the_sphere() {
        let g = TileGrid::new(3, 5);
        let total: f64 = g.tiles().map(|t| g.rect(t).solid_angle()).sum();
        assert!((total - 4.0 * PI).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn direction_maps_to_containing_rect() {
        let g = TileGrid::new(4, 6);
        for yaw_deg in (-175..180).step_by(25) {
            for pitch_deg in (-85..=85).step_by(17) {
                let o = Orientation::from_degrees(yaw_deg as f64, pitch_deg as f64, 0.0);
                let t = g.tile_of_direction(o.direction());
                let r = g.rect(t);
                let yaw = deg(yaw_deg as f64);
                let pitch = deg(pitch_deg as f64);
                assert!(
                    yaw >= r.yaw_min - 1e-9 && yaw <= r.yaw_max + 1e-9,
                    "yaw {yaw_deg} not in {r:?}"
                );
                assert!(
                    pitch >= r.pitch_min - 1e-9 && pitch <= r.pitch_max + 1e-9,
                    "pitch {pitch_deg} not in {r:?}"
                );
            }
        }
    }

    #[test]
    fn tile_center_maps_back_to_same_tile() {
        let g = TileGrid::new(4, 6);
        for t in g.tiles() {
            assert_eq!(g.tile_of_direction(g.tile_center(t)), t);
        }
    }

    #[test]
    fn front_direction_is_middle_tile() {
        let g = TileGrid::new(2, 4);
        let t = g.tile_of_direction(Vec3::X);
        let (row, col) = g.position(t);
        // Front (+X) = yaw 0, pitch 0: yaw 0 is at u=0.5 → col 2 of 4;
        // pitch 0 is at v=0.5 → row 1 of 2.
        assert_eq!((row, col), (1, 2));
    }

    #[test]
    fn poles_map_to_extreme_rows() {
        let g = TileGrid::new(4, 4);
        let (row_top, _) = g.position(g.tile_of_direction(Vec3::Z));
        let (row_bot, _) = g.position(g.tile_of_direction(-Vec3::Z));
        assert_eq!(row_top, 0);
        assert_eq!(row_bot, 3);
    }

    #[test]
    fn grid_distance_wraps_in_yaw() {
        let g = TileGrid::new(1, 8);
        let west = g.id_at(0, 0);
        let east = g.id_at(0, 7);
        assert_eq!(
            g.grid_distance(west, east),
            1,
            "columns 0 and 7 are adjacent"
        );
        assert_eq!(g.grid_distance(west, g.id_at(0, 4)), 4);
        assert_eq!(g.grid_distance(west, west), 0);
    }

    #[test]
    fn neighborhood_radius_zero_is_self() {
        let g = TileGrid::new(4, 6);
        let c = g.id_at(2, 3);
        assert_eq!(g.neighborhood(c, 0), vec![c]);
    }

    #[test]
    fn neighborhood_radius_one_in_interior() {
        let g = TileGrid::new(4, 6);
        let c = g.id_at(1, 2);
        let n = g.neighborhood(c, 1);
        assert_eq!(n.len(), 9, "3x3 block");
        assert_eq!(n[0], c, "center sorts first at distance 0");
    }

    #[test]
    fn tile_of_angles_consistent_with_direction() {
        let g = TileGrid::new(3, 7);
        for i in 0..100 {
            let yaw = (i as f64 * 0.37).sin() * PI * 0.999;
            let pitch = (i as f64 * 0.17).cos() * FRAC_PI_2 * 0.98;
            let o = Orientation::new(yaw, pitch, 0.0);
            assert_eq!(
                g.tile_of_angles(yaw, pitch),
                g.tile_of_direction(o.direction()),
                "i={i}"
            );
        }
    }

    #[test]
    fn tile_centers_table_is_bit_identical() {
        for g in [
            TileGrid::new(2, 4),
            TileGrid::new(4, 6),
            TileGrid::new(3, 7),
        ] {
            let table = TileCenters::new(g);
            for t in g.tiles() {
                let a = table.center(t);
                let b = g.tile_center(t);
                assert_eq!(a.x.to_bits(), b.x.to_bits());
                assert_eq!(a.y.to_bits(), b.y.to_bits());
                assert_eq!(a.z.to_bits(), b.z.to_bits());
                let dir = Orientation::from_degrees(33.0, -12.0, 0.0).direction();
                assert_eq!(
                    table.distance_to_tile(dir, t).to_bits(),
                    g.distance_to_tile(dir, t).to_bits()
                );
            }
        }
    }

    #[test]
    #[should_panic]
    fn degenerate_grid_rejected() {
        TileGrid::new(0, 4);
    }
}
