//! Sphere-to-plane projections used by 360° platforms.
//!
//! The paper (§2) names two deployed schemes: **equirectangular**
//! (YouTube) and **cube map** (Facebook). Both are implemented as exact
//! direction ↔ texture-coordinate mappings, plus the pixel-efficiency
//! model used by experiment E9 (the "360° videos are ~5× larger" claim).

use crate::vector::Vec3;
use serde::{Deserialize, Serialize};
use std::f64::consts::{FRAC_PI_2, PI, TAU};

/// Normalized texture coordinates in `[0,1) × [0,1]`.
///
/// `u` increases with yaw (longitude), `v` from top (v=0, pitch +90°) to
/// bottom (v=1, pitch −90°).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Uv {
    /// Horizontal coordinate, `[0,1)`.
    pub u: f64,
    /// Vertical coordinate, `[0,1]`.
    pub v: f64,
}

/// Equirectangular projection: longitude/latitude mapped linearly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Equirect;

impl Equirect {
    /// Project a unit direction to texture coordinates.
    pub fn project(dir: Vec3) -> Uv {
        let d = dir.normalized();
        let yaw = d.y.atan2(d.x); // [-π, π]
        let pitch = d.z.clamp(-1.0, 1.0).asin(); // [-π/2, π/2]
        let mut u = (yaw + PI) / TAU;
        if u >= 1.0 {
            u -= 1.0;
        }
        let v = (FRAC_PI_2 - pitch) / PI;
        Uv { u, v }
    }

    /// Inverse projection: texture coordinates to a unit direction.
    pub fn unproject(uv: Uv) -> Vec3 {
        let yaw = uv.u * TAU - PI;
        let pitch = FRAC_PI_2 - uv.v * PI;
        let cp = pitch.cos();
        Vec3::new(cp * yaw.cos(), cp * yaw.sin(), pitch.sin())
    }

    /// Linear horizontal oversampling factor at latitude `pitch`:
    /// an equirect row at latitude φ stores `1/cos φ` more pixels per
    /// solid angle than the equator.
    pub fn row_oversampling(pitch: f64) -> f64 {
        let c = pitch.cos().abs();
        if c < 1e-6 {
            1e6
        } else {
            1.0 / c
        }
    }
}

/// The six cube-map faces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CubeFace {
    /// +X (front).
    Front,
    /// −X (back).
    Back,
    /// +Y (left).
    Left,
    /// −Y (right).
    Right,
    /// +Z (top).
    Top,
    /// −Z (bottom).
    Bottom,
}

impl CubeFace {
    /// All faces in a fixed order.
    pub const ALL: [CubeFace; 6] = [
        CubeFace::Front,
        CubeFace::Back,
        CubeFace::Left,
        CubeFace::Right,
        CubeFace::Top,
        CubeFace::Bottom,
    ];
}

/// Cube-map projection (Facebook's layout, §2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CubeMap;

impl CubeMap {
    /// Project a unit direction to `(face, uv)` with `uv` in `[0,1]²`.
    pub fn project(dir: Vec3) -> (CubeFace, Uv) {
        let d = dir.normalized();
        let (ax, ay, az) = (d.x.abs(), d.y.abs(), d.z.abs());
        // Select dominant axis; map the other two onto the face plane.
        let (face, a, b, m) = if ax >= ay && ax >= az {
            if d.x > 0.0 {
                (CubeFace::Front, d.y, d.z, ax)
            } else {
                (CubeFace::Back, -d.y, d.z, ax)
            }
        } else if ay >= ax && ay >= az {
            if d.y > 0.0 {
                (CubeFace::Left, -d.x, d.z, ay)
            } else {
                (CubeFace::Right, d.x, d.z, ay)
            }
        } else if d.z > 0.0 {
            (CubeFace::Top, d.y, -d.x, az)
        } else {
            (CubeFace::Bottom, d.y, d.x, az)
        };
        let u = (a / m + 1.0) / 2.0;
        let v = (1.0 - b / m) / 2.0;
        (face, Uv { u, v })
    }

    /// Inverse projection: `(face, uv)` back to a unit direction.
    pub fn unproject(face: CubeFace, uv: Uv) -> Vec3 {
        let a = uv.u * 2.0 - 1.0;
        let b = 1.0 - uv.v * 2.0;
        let v = match face {
            CubeFace::Front => Vec3::new(1.0, a, b),
            CubeFace::Back => Vec3::new(-1.0, -a, b),
            CubeFace::Left => Vec3::new(-a, 1.0, b),
            CubeFace::Right => Vec3::new(a, -1.0, b),
            CubeFace::Top => Vec3::new(-b, a, 1.0),
            CubeFace::Bottom => Vec3::new(b, a, -1.0),
        };
        v.normalized()
    }
}

/// Offset cube map: Oculus's projection (the one requiring up to 88
/// versions, §2). The sphere is warped toward a preferred direction
/// before cube-mapping, so pixels concentrate where the version expects
/// the viewer to look. The warp moves a direction `d` to
/// `normalize(d - k·f)` where `f` is the focus direction and
/// `k ∈ [0, 1)` the offset strength; the inverse solves the quadratic
/// exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OffsetCubeMap {
    /// The direction pixel density is biased toward.
    pub focus: Vec3,
    /// Offset strength in `[0, 1)`; 0 degenerates to a plain cube map.
    pub offset: f64,
}

impl OffsetCubeMap {
    /// Construct; panics outside the valid offset range.
    pub fn new(focus: Vec3, offset: f64) -> OffsetCubeMap {
        assert!((0.0..1.0).contains(&offset), "offset must be in [0,1)");
        OffsetCubeMap {
            focus: focus.normalized(),
            offset,
        }
    }

    /// Oculus's published configuration (~0.7 toward the focus).
    pub fn oculus(focus: Vec3) -> OffsetCubeMap {
        OffsetCubeMap::new(focus, 0.7)
    }

    /// Warp a world direction into the offset space.
    pub fn warp(&self, dir: Vec3) -> Vec3 {
        (dir.normalized() - self.focus * self.offset).normalized()
    }

    /// Invert the warp: recover the world direction whose warp is `w`.
    pub fn unwarp(&self, w: Vec3) -> Vec3 {
        // Solve |w·t + k·f| = 1 for t > 0: the original direction is
        // d = w·t + k·f with t chosen so d is unit length.
        let w = w.normalized();
        let k = self.offset;
        let b = w.dot(self.focus) * k;
        // t² + 2bt + (k² − 1) = 0 → t = −b + sqrt(b² + 1 − k²).
        let t = -b + (b * b + 1.0 - k * k).sqrt();
        (w * t + self.focus * k).normalized()
    }

    /// Project a world direction to `(face, uv)` in the offset space.
    pub fn project(&self, dir: Vec3) -> (CubeFace, Uv) {
        CubeMap::project(self.warp(dir))
    }

    /// Inverse projection back to a world direction.
    pub fn unproject(&self, face: CubeFace, uv: Uv) -> Vec3 {
        self.unwarp(CubeMap::unproject(face, uv))
    }

    /// Relative pixel density at a world direction (solid-angle
    /// compression of the warp), normalized so a plain cube map is 1.
    /// Directions near the focus exceed 1; the antipode falls below.
    pub fn density(&self, dir: Vec3) -> f64 {
        // d(warped)/d(dir) scale: for the radial warp the angular
        // magnification near direction d is |d − k f|⁻¹ in the limit —
        // use the derivative of the warped angle numerically.
        let d = dir.normalized();
        let eps = 1e-4;
        // Perturb along a tangent.
        let tangent = if d.cross(Vec3::Z).norm() > 1e-6 {
            d.cross(Vec3::Z).normalized()
        } else {
            d.cross(Vec3::X).normalized()
        };
        let d2 = (d + tangent * eps).normalized();
        let warped_angle = self.warp(d).angle_to(self.warp(d2));
        let raw_angle = d.angle_to(d2);
        // Pixels are laid out uniformly in warped space, so the pixel
        // density seen by a world direction is the square (two angular
        // dimensions) of the warped-angle-per-world-angle magnification.
        (warped_angle / raw_angle).powi(2)
    }
}

/// Pixel-budget model comparing a full panorama against a conventional
/// perspective video at matched angular resolution (pixels per degree in
/// the viewport centre). This backs experiment E9: the paper's claim that
/// 360° videos are ~4–5× larger than conventional videos at the same
/// perceived quality (§1, §3.4.1).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PixelBudget {
    /// Horizontal field of view of the comparison viewport, radians.
    pub viewport_hfov: f64,
    /// Vertical field of view of the comparison viewport, radians.
    pub viewport_vfov: f64,
}

impl PixelBudget {
    /// A typical VR headset viewport (100° × 90°), the paper's premise.
    pub fn headset() -> PixelBudget {
        PixelBudget {
            viewport_hfov: 100f64.to_radians(),
            viewport_vfov: 90f64.to_radians(),
        }
    }

    /// Pixels required by an equirectangular panorama whose equatorial
    /// angular resolution matches a perspective video of
    /// `width × height` pixels spanning the comparison viewport.
    pub fn equirect_pixels(&self, width: u32, height: u32) -> f64 {
        // Perspective pixels per radian at the image centre.
        let ppr_h = width as f64 / (2.0 * (self.viewport_hfov / 2.0).tan());
        let ppr_v = height as f64 / (2.0 * (self.viewport_vfov / 2.0).tan());
        // Equirect spans 2π × π at uniform (u,v) density.
        (ppr_h * TAU) * (ppr_v * PI)
    }

    /// Pixels of the perspective (conventional) video itself.
    pub fn perspective_pixels(&self, width: u32, height: u32) -> f64 {
        width as f64 * height as f64
    }

    /// Size ratio panorama / conventional under a bitrate model where
    /// bytes scale linearly with pixel count (H.264/H.265 at fixed
    /// quality is approximately linear in pixels).
    pub fn size_ratio(&self, width: u32, height: u32) -> f64 {
        self.equirect_pixels(width, height) / self.perspective_pixels(width, height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orientation::Orientation;

    #[test]
    fn equirect_known_points() {
        let front = Equirect::project(Vec3::X);
        assert!((front.u - 0.5).abs() < 1e-12);
        assert!((front.v - 0.5).abs() < 1e-12);
        let up = Equirect::project(Vec3::Z);
        assert!(up.v.abs() < 1e-9);
        let down = Equirect::project(-Vec3::Z);
        assert!((down.v - 1.0).abs() < 1e-9);
    }

    #[test]
    fn equirect_roundtrip() {
        for yaw_deg in (-170..180).step_by(37) {
            for pitch_deg in (-80..=80).step_by(20) {
                let o = Orientation::from_degrees(yaw_deg as f64, pitch_deg as f64, 0.0);
                let d = o.direction();
                let back = Equirect::unproject(Equirect::project(d));
                assert!((d - back).norm() < 1e-9, "at {yaw_deg},{pitch_deg}");
            }
        }
    }

    #[test]
    fn equirect_u_wraps_into_unit_interval() {
        // Direction just shy of yaw = +π should give u close to 1 but < 1.
        let d = Orientation::from_degrees(179.999, 0.0, 0.0).direction();
        let uv = Equirect::project(d);
        assert!(uv.u < 1.0 && uv.u > 0.99);
    }

    #[test]
    fn row_oversampling_grows_towards_poles() {
        assert!((Equirect::row_oversampling(0.0) - 1.0).abs() < 1e-12);
        assert!(Equirect::row_oversampling(60f64.to_radians()) > 1.9);
        assert!(Equirect::row_oversampling(89.9999f64.to_radians()) > 1000.0);
    }

    #[test]
    fn cubemap_face_selection() {
        assert_eq!(CubeMap::project(Vec3::X).0, CubeFace::Front);
        assert_eq!(CubeMap::project(-Vec3::X).0, CubeFace::Back);
        assert_eq!(CubeMap::project(Vec3::Y).0, CubeFace::Left);
        assert_eq!(CubeMap::project(-Vec3::Y).0, CubeFace::Right);
        assert_eq!(CubeMap::project(Vec3::Z).0, CubeFace::Top);
        assert_eq!(CubeMap::project(-Vec3::Z).0, CubeFace::Bottom);
    }

    #[test]
    fn cubemap_centers_are_half_half() {
        for face in CubeFace::ALL {
            let center = CubeMap::unproject(face, Uv { u: 0.5, v: 0.5 });
            let (f2, uv) = CubeMap::project(center);
            assert_eq!(face, f2);
            assert!((uv.u - 0.5).abs() < 1e-9 && (uv.v - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn cubemap_roundtrip_dense() {
        for i in 0..200 {
            let yaw = (i as f64 * 0.7).sin() * PI * 0.999;
            let pitch = (i as f64 * 0.3).cos() * FRAC_PI_2 * 0.99;
            let d = Orientation::new(yaw, pitch, 0.0).direction();
            let (face, uv) = CubeMap::project(d);
            let back = CubeMap::unproject(face, uv);
            assert!((d - back).norm() < 1e-9, "i={i}");
        }
    }

    #[test]
    fn offset_cubemap_roundtrips() {
        let ocm = OffsetCubeMap::oculus(Vec3::X);
        for i in 0..100 {
            let yaw = (i as f64 * 0.61).sin() * PI * 0.99;
            let pitch = (i as f64 * 0.37).cos() * FRAC_PI_2 * 0.95;
            let d = Orientation::new(yaw, pitch, 0.0).direction();
            let (face, uv) = ocm.project(d);
            let back = ocm.unproject(face, uv);
            assert!((d - back).norm() < 1e-9, "i={i}: {d:?} vs {back:?}");
        }
    }

    #[test]
    fn zero_offset_degenerates_to_cubemap() {
        let ocm = OffsetCubeMap::new(Vec3::X, 0.0);
        let d = Orientation::from_degrees(40.0, 20.0, 0.0).direction();
        assert_eq!(ocm.project(d), CubeMap::project(d));
    }

    #[test]
    fn density_peaks_at_focus() {
        let ocm = OffsetCubeMap::oculus(Vec3::X);
        let at_focus = ocm.density(Vec3::X);
        let behind = ocm.density(-Vec3::X);
        let side = ocm.density(Vec3::Y);
        assert!(at_focus > 2.0, "focus density {at_focus}");
        assert!(behind < 0.7, "antipodal density {behind}");
        assert!(at_focus > side && side > behind);
    }

    #[test]
    fn warp_preserves_focus_axis() {
        let ocm = OffsetCubeMap::oculus(Vec3::X);
        assert!((ocm.warp(Vec3::X) - Vec3::X).norm() < 1e-12);
        assert!((ocm.warp(-Vec3::X) - -Vec3::X).norm() < 1e-12);
    }

    #[test]
    fn size_ratio_matches_paper_claim() {
        // The paper: "360° videos have around 5x larger sizes than
        // conventional videos" under the same perceived quality.
        let ratio = PixelBudget::headset().size_ratio(1920, 1080);
        assert!(
            (3.5..7.0).contains(&ratio),
            "expected a ~4-5x blowup, got {ratio:.2}"
        );
    }
}
