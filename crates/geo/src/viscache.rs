//! Memoized tile-visibility queries: the hot-path cache.
//!
//! Every layer of the stack — the rate adaptor, the HMP evaluators, the
//! live path, the fleet model — bottoms out in
//! [`Viewport::visible_tiles`], which casts a ray grid and runs
//! trig-heavy projection math per sample. The same gaze orientation is
//! re-queried many times per simulated second, so a [`VisibilityCache`]
//! memoizes *exact* results keyed by the orientation's f64 bit patterns
//! plus the grid shape and sample density. Because the key is the exact
//! bit pattern and the stored value is the exact computed result, a
//! cache hit is bit-identical to recomputation by construction — the
//! golden trace digests cannot tell the difference.
//!
//! The handle is an `Arc<Mutex<..>>` (like `TraceSink`), so a world
//! holding one is `Send` and the parallel federation replay can move
//! node worlds across worker threads between windows. Determinism does
//! not depend on the hit pattern: the key is the exact bit pattern and
//! the stored value the exact computed result, so a hit and a
//! recomputation are indistinguishable. Parallel sweeps still build one
//! cache per worker world, keeping lock contention at zero.

use crate::tiling::{TileGrid, TileId};
use crate::viewport::{Viewport, VisibilityScratch};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Arc, Mutex, MutexGuard};

/// A fast multiply-rotate hasher for [`VisKey`] lookups (FxHash-style).
/// The memo map sits on the per-display hot path, where SipHash over
/// the 46-byte key costs more than the rest of a cache hit combined;
/// keys are trusted simulation state, so DoS hardening buys nothing.
/// Purely an internal detail: hit patterns and results are unchanged.
#[derive(Default)]
struct VisKeyHasher(u64);

impl Hasher for VisKeyHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }
    fn write_u16(&mut self, n: u16) {
        self.write_u64(n as u64);
    }
    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n)
            .wrapping_mul(0x517c_c1b7_2722_0a95)
            .rotate_left(5);
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

type VisKeyMap = HashMap<VisKey, Entry, BuildHasherDefault<VisKeyHasher>>;

/// Exact memoization key: the f64 bit patterns of the viewport's
/// orientation and FoV extents, the grid shape, and the sample density.
/// Two viewports compare equal here iff `visible_tiles` would perform
/// the identical computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VisKey {
    yaw: u64,
    pitch: u64,
    roll: u64,
    hfov: u64,
    vfov: u64,
    rows: u16,
    cols: u16,
    samples: u32,
}

impl VisKey {
    /// The key for one `(viewport, grid, samples)` query.
    pub fn new(viewport: &Viewport, grid: &TileGrid, samples: u32) -> VisKey {
        VisKey {
            yaw: viewport.orientation.yaw.to_bits(),
            pitch: viewport.orientation.pitch.to_bits(),
            roll: viewport.orientation.roll.to_bits(),
            hfov: viewport.hfov.to_bits(),
            vfov: viewport.vfov.to_bits(),
            rows: grid.rows,
            cols: grid.cols,
            samples,
        }
    }
}

/// Hit/miss/eviction counters of one cache, plus its occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VisCacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that had to compute (and store) a fresh result.
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
    /// The LRU bound (0 when the cache is disabled).
    pub capacity: usize,
}

#[derive(Debug)]
struct Entry {
    tiles: Arc<[(TileId, f64)]>,
    /// Monotone use tick; strictly increasing over touches, so LRU
    /// eviction has a unique, deterministic victim.
    last_used: u64,
}

#[derive(Debug)]
struct CacheInner {
    capacity: usize,
    tick: u64,
    entries: VisKeyMap,
    scratch: VisibilityScratch,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A bounded LRU memo of exact [`Viewport::visible_tiles`] results.
///
/// The handle is cheap to clone (`Arc`); clones share one cache, which
/// is how a cache is threaded through a session's subsystems. See the
/// [module docs](self) for the bit-exactness and threading contract.
///
/// ```
/// use sperke_geo::{Orientation, TileGrid, Viewport, VisibilityCache};
///
/// let cache = VisibilityCache::new(64);
/// let grid = TileGrid::new(4, 6);
/// let vp = Viewport::headset(Orientation::from_degrees(30.0, 10.0, 0.0));
/// let first = cache.visible_tiles(&vp, &grid, 16);
/// let again = cache.visible_tiles(&vp, &grid, 16); // memo hit
/// assert_eq!(first, again);
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct VisibilityCache {
    inner: Option<Arc<Mutex<CacheInner>>>,
}

/// Lock the cache state, surviving a poisoned mutex (a panicking
/// worker must not mask the original failure with a second one).
fn lock(inner: &Mutex<CacheInner>) -> MutexGuard<'_, CacheInner> {
    inner.lock().unwrap_or_else(|p| p.into_inner())
}

/// Default LRU bound: generously covers a session's working set of
/// distinct (gaze, grid, density) queries while keeping the worst-case
/// eviction scan trivial.
pub const DEFAULT_VIS_CACHE_CAPACITY: usize = 256;

impl Default for VisibilityCache {
    fn default() -> Self {
        VisibilityCache::new(DEFAULT_VIS_CACHE_CAPACITY)
    }
}

impl VisibilityCache {
    /// A cache bounded to `capacity` entries (LRU eviction).
    pub fn new(capacity: usize) -> VisibilityCache {
        assert!(
            capacity > 0,
            "capacity must be positive; use disabled() to turn caching off"
        );
        VisibilityCache {
            inner: Some(Arc::new(Mutex::new(CacheInner {
                capacity,
                tick: 0,
                entries: VisKeyMap::with_capacity_and_hasher(
                    capacity.min(1024),
                    BuildHasherDefault::default(),
                ),
                scratch: VisibilityScratch::new(),
                hits: 0,
                misses: 0,
                evictions: 0,
            }))),
        }
    }

    /// A no-op handle: every query recomputes and nothing is stored.
    /// Useful as an uncached baseline through the exact same call path.
    pub fn disabled() -> VisibilityCache {
        VisibilityCache { inner: None }
    }

    /// Whether this handle memoizes at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Memoized [`Viewport::visible_tiles`]: bit-identical results, with
    /// repeat queries answered by an `Arc` clone (no recomputation, no
    /// allocation).
    pub fn visible_tiles(
        &self,
        viewport: &Viewport,
        grid: &TileGrid,
        samples: u32,
    ) -> Arc<[(TileId, f64)]> {
        let inner = match &self.inner {
            None => return Arc::from(viewport.visible_tiles(grid, samples)),
            Some(inner) => inner,
        };
        let key = VisKey::new(viewport, grid, samples);
        let mut inner = lock(inner);
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.entries.get_mut(&key) {
            entry.last_used = tick;
            let tiles = Arc::clone(&entry.tiles);
            inner.hits += 1;
            return tiles;
        }
        inner.misses += 1;
        let mut out = Vec::new();
        viewport.visible_tiles_into(grid, samples, &mut inner.scratch, &mut out);
        let tiles: Arc<[(TileId, f64)]> = Arc::from(out);
        if inner.entries.len() >= inner.capacity {
            // Evict the least-recently-used entry. Ticks are unique, so
            // the victim is deterministic regardless of map iteration
            // order (results would be identical either way — eviction
            // only ever forces recomputation of the same exact value).
            if let Some(&victim) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                inner.entries.remove(&victim);
                inner.evictions += 1;
            }
        }
        inner.entries.insert(
            key,
            Entry {
                tiles: Arc::clone(&tiles),
                last_used: tick,
            },
        );
        tiles
    }

    /// Memoized [`Viewport::visible_tile_set`]: the visible tile ids at
    /// the default sampling density, sorted by id. Identical to the
    /// uncached method.
    pub fn visible_tile_set(&self, viewport: &Viewport, grid: &TileGrid) -> Vec<TileId> {
        let mut tiles: Vec<TileId> = self
            .visible_tiles(viewport, grid, 16)
            .iter()
            .map(|&(t, _)| t)
            .collect();
        tiles.sort();
        tiles
    }

    /// Current counters and occupancy. A disabled handle reports zeros.
    pub fn stats(&self) -> VisCacheStats {
        match &self.inner {
            None => VisCacheStats::default(),
            Some(inner) => {
                let inner = lock(inner);
                VisCacheStats {
                    hits: inner.hits,
                    misses: inner.misses,
                    evictions: inner.evictions,
                    len: inner.entries.len(),
                    capacity: inner.capacity,
                }
            }
        }
    }

    /// Drop every memoized entry (counters survive).
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            lock(inner).entries.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orientation::Orientation;

    fn vp(yaw: f64, pitch: f64) -> Viewport {
        Viewport::headset(Orientation::from_degrees(yaw, pitch, 0.0))
    }

    #[test]
    fn hit_returns_bit_identical_result() {
        let cache = VisibilityCache::new(8);
        let grid = TileGrid::new(4, 6);
        let v = vp(33.0, -12.0);
        let uncached = v.visible_tiles(&grid, 16);
        let miss = cache.visible_tiles(&v, &grid, 16);
        let hit = cache.visible_tiles(&v, &grid, 16);
        for (a, b) in uncached.iter().zip(miss.iter()) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
        assert!(
            Arc::ptr_eq(&miss, &hit),
            "a hit shares the stored allocation"
        );
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = VisibilityCache::new(16);
        let grid_a = TileGrid::new(4, 6);
        let grid_b = TileGrid::new(2, 4);
        let v = vp(10.0, 5.0);
        let a = cache.visible_tiles(&v, &grid_a, 16);
        let b = cache.visible_tiles(&v, &grid_b, 16);
        let c = cache.visible_tiles(&v, &grid_a, 12);
        assert_eq!(
            cache.stats().misses,
            3,
            "grid shape and density are part of the key"
        );
        assert_ne!(a.len(), 0);
        assert_ne!(b.len(), 0);
        assert_ne!(c.len(), 0);
    }

    #[test]
    fn lru_evicts_oldest_and_never_changes_results() {
        let cache = VisibilityCache::new(2);
        let grid = TileGrid::new(4, 6);
        let views = [vp(0.0, 0.0), vp(45.0, 10.0), vp(-90.0, -20.0)];
        // Fill (2 misses), touch views[1], then overflow with views[2]:
        // views[0] is the LRU victim.
        cache.visible_tiles(&views[0], &grid, 16);
        cache.visible_tiles(&views[1], &grid, 16);
        cache.visible_tiles(&views[1], &grid, 16);
        cache.visible_tiles(&views[2], &grid, 16);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().len, 2);
        // The evicted query recomputes — to the same bits.
        let recomputed = cache.visible_tiles(&views[0], &grid, 16);
        let fresh = views[0].visible_tiles(&grid, 16);
        for (a, b) in recomputed.iter().zip(&fresh) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn tile_set_matches_uncached() {
        let cache = VisibilityCache::default();
        let grid = TileGrid::new(4, 6);
        for &(y, p) in &[(0.0, 0.0), (120.0, 33.0), (-77.0, -45.0)] {
            let v = vp(y, p);
            assert_eq!(cache.visible_tile_set(&v, &grid), v.visible_tile_set(&grid));
        }
    }

    #[test]
    fn disabled_handle_computes_and_stores_nothing() {
        let cache = VisibilityCache::disabled();
        let grid = TileGrid::new(4, 6);
        let v = vp(20.0, 0.0);
        let a = cache.visible_tiles(&v, &grid, 16);
        let b = cache.visible_tiles(&v, &grid, 16);
        assert!(!cache.is_enabled());
        assert!(!Arc::ptr_eq(&a, &b), "no memoization when disabled");
        assert_eq!(cache.stats(), VisCacheStats::default());
    }

    #[test]
    fn clones_share_one_cache() {
        let cache = VisibilityCache::new(8);
        let clone = cache.clone();
        let grid = TileGrid::new(4, 6);
        clone.visible_tiles(&vp(5.0, 5.0), &grid, 16);
        assert_eq!(cache.stats().misses, 1);
        cache.visible_tiles(&vp(5.0, 5.0), &grid, 16);
        assert_eq!(clone.stats().hits, 1);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        VisibilityCache::new(0);
    }
}
