//! Sphere sampling utilities.
//!
//! Used by the §2 *versioning* model (a server keeps many versions of a
//! video, each with a high-quality region centred on one of a set of
//! well-spread directions — Oculus 360 maintains up to 88) and by
//! Monte-Carlo coverage computations.

use crate::orientation::Orientation;
use crate::vector::Vec3;
use std::f64::consts::{PI, TAU};

/// `n` approximately uniformly distributed unit directions (Fibonacci
/// spiral lattice). Deterministic.
pub fn fibonacci_sphere(n: usize) -> Vec<Vec3> {
    assert!(n > 0, "need at least one point");
    let golden = PI * (3.0 - 5.0f64.sqrt());
    (0..n)
        .map(|i| {
            // z descends uniformly; yaw advances by the golden angle.
            let z = 1.0 - (2.0 * i as f64 + 1.0) / n as f64;
            let r = (1.0 - z * z).max(0.0).sqrt();
            let theta = golden * i as f64;
            Vec3::new(r * theta.cos(), r * theta.sin(), z)
        })
        .collect()
}

/// Like [`fibonacci_sphere`], as orientations (roll 0).
pub fn fibonacci_orientations(n: usize) -> Vec<Orientation> {
    fibonacci_sphere(n).into_iter().map(Orientation::looking_at).collect()
}

/// The nearest direction in `candidates` to `dir` (index), by
/// great-circle distance. Panics on empty candidates.
pub fn nearest(candidates: &[Vec3], dir: Vec3) -> usize {
    assert!(!candidates.is_empty());
    let d = dir.normalized();
    let mut best = (f64::NEG_INFINITY, 0usize);
    for (i, &c) in candidates.iter().enumerate() {
        let dot = c.normalized().dot(d);
        if dot > best.0 {
            best = (dot, i);
        }
    }
    best.1
}

/// The maximum over the sphere of the distance to the nearest candidate
/// (covering radius), estimated on a `steps × 2·steps` lat/long grid.
pub fn covering_radius(candidates: &[Vec3], steps: usize) -> f64 {
    assert!(!candidates.is_empty() && steps >= 4);
    let mut worst = 0.0f64;
    for iy in 0..steps {
        let pitch = -PI / 2.0 + (iy as f64 + 0.5) / steps as f64 * PI;
        for ix in 0..(2 * steps) {
            let yaw = -PI + (ix as f64 + 0.5) / (2 * steps) as f64 * TAU;
            let dir = Orientation::new(yaw, pitch, 0.0).direction();
            let i = nearest(candidates, dir);
            worst = worst.max(candidates[i].normalized().angle_to(dir));
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fibonacci_points_are_unit_and_distinct() {
        let pts = fibonacci_sphere(88);
        assert_eq!(pts.len(), 88);
        for p in &pts {
            assert!((p.norm() - 1.0).abs() < 1e-12);
        }
        for (i, a) in pts.iter().enumerate() {
            for b in pts.iter().skip(i + 1) {
                assert!(a.angle_to(*b) > 0.05, "points collide");
            }
        }
    }

    #[test]
    fn fibonacci_centroid_near_origin() {
        let pts = fibonacci_sphere(200);
        let sum = pts.iter().fold(Vec3::ZERO, |acc, &p| acc + p);
        assert!(sum.norm() / 200.0 < 0.05, "distribution should balance");
    }

    #[test]
    fn nearest_finds_the_obvious_candidate() {
        let candidates = vec![Vec3::X, Vec3::Y, Vec3::Z];
        assert_eq!(nearest(&candidates, Vec3::new(0.9, 0.1, 0.0)), 0);
        assert_eq!(nearest(&candidates, Vec3::new(0.0, 0.0, -1.0).lerp(Vec3::Z, 0.9)), 2);
    }

    #[test]
    fn covering_radius_shrinks_with_more_points() {
        let r8 = covering_radius(&fibonacci_sphere(8), 24);
        let r88 = covering_radius(&fibonacci_sphere(88), 24);
        assert!(r88 < r8, "88 versions cover tighter than 8: {r88} vs {r8}");
        // 88 well-spread points cover the sphere within ~25°.
        assert!(r88 < 30f64.to_radians(), "r88 = {}°", r88.to_degrees());
    }

    #[test]
    fn orientations_match_directions() {
        let pts = fibonacci_sphere(16);
        let os = fibonacci_orientations(16);
        for (p, o) in pts.iter().zip(&os) {
            assert!(p.angle_to(o.direction()) < 1e-9);
        }
    }

    #[test]
    #[should_panic]
    fn empty_candidates_rejected() {
        nearest(&[], Vec3::X);
    }
}
