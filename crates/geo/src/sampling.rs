//! Sphere sampling utilities.
//!
//! Used by the §2 *versioning* model (a server keeps many versions of a
//! video, each with a high-quality region centred on one of a set of
//! well-spread directions — Oculus 360 maintains up to 88) and by
//! Monte-Carlo coverage computations.

use crate::orientation::Orientation;
use crate::vector::Vec3;
use std::f64::consts::{PI, TAU};

/// `n` approximately uniformly distributed unit directions (Fibonacci
/// spiral lattice). Deterministic.
pub fn fibonacci_sphere(n: usize) -> Vec<Vec3> {
    assert!(n > 0, "need at least one point");
    let golden = PI * (3.0 - 5.0f64.sqrt());
    (0..n)
        .map(|i| {
            // z descends uniformly; yaw advances by the golden angle.
            let z = 1.0 - (2.0 * i as f64 + 1.0) / n as f64;
            let r = (1.0 - z * z).max(0.0).sqrt();
            let theta = golden * i as f64;
            Vec3::new(r * theta.cos(), r * theta.sin(), z)
        })
        .collect()
}

/// Like [`fibonacci_sphere`], as orientations (roll 0).
pub fn fibonacci_orientations(n: usize) -> Vec<Orientation> {
    fibonacci_sphere(n)
        .into_iter()
        .map(Orientation::looking_at)
        .collect()
}

/// The nearest direction in `candidates` to `dir` (index), by
/// great-circle distance. Panics on empty candidates.
///
/// For repeated queries against the same candidate set, build a
/// [`UnitDirections`] once instead — this one-shot form normalizes every
/// candidate per call.
pub fn nearest(candidates: &[Vec3], dir: Vec3) -> usize {
    assert!(!candidates.is_empty());
    let d = dir.normalized();
    let mut best = (f64::NEG_INFINITY, 0usize);
    for (i, &c) in candidates.iter().enumerate() {
        let dot = c.normalized().dot(d);
        if dot > best.0 {
            best = (dot, i);
        }
    }
    best.1
}

/// A candidate set pre-normalized for repeated nearest-direction
/// queries: the per-candidate `normalized()` that [`nearest`] performs
/// on every call is hoisted to construction, done exactly once.
///
/// Candidates from [`fibonacci_sphere`] are already unit-length (within
/// 1e-12, asserted here), so construction is effectively a copy; the
/// stored values are the same bits `nearest` would compute per query,
/// which keeps query results bit-identical to the one-shot form.
#[derive(Debug, Clone)]
pub struct UnitDirections {
    units: Vec<Vec3>,
}

impl UnitDirections {
    /// Normalize `candidates` once up front. Panics on an empty set.
    pub fn new(candidates: &[Vec3]) -> UnitDirections {
        assert!(!candidates.is_empty());
        debug_assert!(
            candidates.iter().all(|c| (c.norm() - 1.0).abs() < 1e-6),
            "candidate sets are expected to be (near-)unit directions"
        );
        UnitDirections {
            units: candidates.iter().map(|c| c.normalized()).collect(),
        }
    }

    /// The pre-normalized directions, in candidate order.
    pub fn as_slice(&self) -> &[Vec3] {
        &self.units
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Never true (construction rejects empty sets).
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// The index of the candidate nearest to `dir` by great-circle
    /// distance. Identical to [`nearest`] on the original set.
    pub fn nearest(&self, dir: Vec3) -> usize {
        let d = dir.normalized();
        let mut best = (f64::NEG_INFINITY, 0usize);
        for (i, &u) in self.units.iter().enumerate() {
            let dot = u.dot(d);
            if dot > best.0 {
                best = (dot, i);
            }
        }
        best.1
    }
}

/// The maximum over the sphere of the distance to the nearest candidate
/// (covering radius), estimated on a `steps × 2·steps` lat/long grid.
///
/// The candidates are normalized once up front ([`UnitDirections`])
/// instead of once per grid point per candidate; results are
/// bit-identical to the naive formulation.
pub fn covering_radius(candidates: &[Vec3], steps: usize) -> f64 {
    assert!(!candidates.is_empty() && steps >= 4);
    let units = UnitDirections::new(candidates);
    let mut worst = 0.0f64;
    for iy in 0..steps {
        let pitch = -PI / 2.0 + (iy as f64 + 0.5) / steps as f64 * PI;
        for ix in 0..(2 * steps) {
            let yaw = -PI + (ix as f64 + 0.5) / (2 * steps) as f64 * TAU;
            let dir = Orientation::new(yaw, pitch, 0.0).direction();
            let i = units.nearest(dir);
            worst = worst.max(units.as_slice()[i].angle_to(dir));
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fibonacci_points_are_unit_and_distinct() {
        let pts = fibonacci_sphere(88);
        assert_eq!(pts.len(), 88);
        for p in &pts {
            assert!((p.norm() - 1.0).abs() < 1e-12);
        }
        for (i, a) in pts.iter().enumerate() {
            for b in pts.iter().skip(i + 1) {
                assert!(a.angle_to(*b) > 0.05, "points collide");
            }
        }
    }

    #[test]
    fn fibonacci_centroid_near_origin() {
        let pts = fibonacci_sphere(200);
        let sum = pts.iter().fold(Vec3::ZERO, |acc, &p| acc + p);
        assert!(sum.norm() / 200.0 < 0.05, "distribution should balance");
    }

    #[test]
    fn nearest_finds_the_obvious_candidate() {
        let candidates = vec![Vec3::X, Vec3::Y, Vec3::Z];
        assert_eq!(nearest(&candidates, Vec3::new(0.9, 0.1, 0.0)), 0);
        assert_eq!(
            nearest(&candidates, Vec3::new(0.0, 0.0, -1.0).lerp(Vec3::Z, 0.9)),
            2
        );
    }

    #[test]
    fn covering_radius_shrinks_with_more_points() {
        let r8 = covering_radius(&fibonacci_sphere(8), 24);
        let r88 = covering_radius(&fibonacci_sphere(88), 24);
        assert!(r88 < r8, "88 versions cover tighter than 8: {r88} vs {r8}");
        // 88 well-spread points cover the sphere within ~25°.
        assert!(r88 < 30f64.to_radians(), "r88 = {}°", r88.to_degrees());
    }

    #[test]
    fn orientations_match_directions() {
        let pts = fibonacci_sphere(16);
        let os = fibonacci_orientations(16);
        for (p, o) in pts.iter().zip(&os) {
            assert!(p.angle_to(o.direction()) < 1e-9);
        }
    }

    #[test]
    #[should_panic]
    fn empty_candidates_rejected() {
        nearest(&[], Vec3::X);
    }

    #[test]
    fn unit_directions_match_one_shot_nearest() {
        let candidates = fibonacci_sphere(88);
        let units = UnitDirections::new(&candidates);
        assert_eq!(units.len(), 88);
        for i in 0..40 {
            let dir = Orientation::new(
                -PI + TAU * (i as f64 + 0.3) / 40.0,
                -1.3 + 2.6 * ((i * 7 % 40) as f64) / 40.0,
                0.0,
            )
            .direction();
            assert_eq!(units.nearest(dir), nearest(&candidates, dir), "query {i}");
        }
    }

    #[test]
    #[should_panic]
    fn unit_directions_reject_empty() {
        UnitDirections::new(&[]);
    }
}
