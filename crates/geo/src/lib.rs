//! # sperke-geo — spherical geometry for panoramic video
//!
//! Everything spatial in Sperke: view [`Orientation`]s (the paper's
//! Figure 1 yaw/pitch/roll), sphere→plane [`projection`]s
//! (equirectangular and cube map, §2), the [`TileGrid`] spatial
//! segmentation used by tiling-based FoV-guided streaming, and the
//! [`Viewport`] frustum that decides which tiles a user actually sees.
//!
//! ```
//! use sperke_geo::{Orientation, TileGrid, Viewport};
//!
//! let grid = TileGrid::new(4, 6);
//! let vp = Viewport::headset(Orientation::from_degrees(30.0, 10.0, 0.0));
//! let visible = vp.visible_tiles(&grid, 16);
//! assert!(!visible.is_empty());
//! let screen_share: f64 = visible.iter().map(|&(_, f)| f).sum();
//! assert!((screen_share - 1.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

pub mod angles;
pub mod classifier;
pub mod cube_tiling;
pub mod orientation;
pub mod projection;
pub mod sampling;
pub mod tiling;
pub mod vector;
pub mod viewport;
pub mod viscache;

pub use classifier::TileClassifier;
pub use cube_tiling::CubeTileGrid;
pub use orientation::{Orientation, Quat};
pub use projection::{CubeFace, CubeMap, Equirect, OffsetCubeMap, PixelBudget, Uv};
pub use sampling::UnitDirections;
pub use tiling::{TileCenters, TileGrid, TileId, TileRect};
pub use vector::Vec3;
pub use viewport::{visible_tiles_batch, Viewport, VisibilityScratch};
pub use viscache::{VisCacheStats, VisibilityCache, DEFAULT_VIS_CACHE_CAPACITY};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    proptest! {
        /// Equirect project/unproject round-trips for any direction.
        #[test]
        fn equirect_roundtrip(yaw in -PI..PI, pitch in -FRAC_PI_2 * 0.999..FRAC_PI_2 * 0.999) {
            let d = Orientation::new(yaw, pitch, 0.0).direction();
            let back = Equirect::unproject(Equirect::project(d));
            prop_assert!((d - back).norm() < 1e-9);
        }

        /// Cube map project/unproject round-trips for any direction.
        #[test]
        fn cubemap_roundtrip(yaw in -PI..PI, pitch in -FRAC_PI_2 * 0.999..FRAC_PI_2 * 0.999) {
            let d = Orientation::new(yaw, pitch, 0.0).direction();
            let (face, uv) = CubeMap::project(d);
            prop_assert!((d - CubeMap::unproject(face, uv)).norm() < 1e-9);
        }

        /// Every direction lands in exactly one tile whose rect contains it.
        #[test]
        fn tiling_partitions_sphere(
            yaw in -PI..PI,
            pitch in -FRAC_PI_2 * 0.999..FRAC_PI_2 * 0.999,
            rows in 1u16..8,
            cols in 1u16..12,
        ) {
            let g = TileGrid::new(rows, cols);
            let d = Orientation::new(yaw, pitch, 0.0).direction();
            let t = g.tile_of_direction(d);
            let r = g.rect(t);
            prop_assert!(yaw >= r.yaw_min - 1e-9 && yaw <= r.yaw_max + 1e-9);
            prop_assert!(pitch >= r.pitch_min - 1e-9 && pitch <= r.pitch_max + 1e-9);
        }

        /// The viewport always contains its own centre ray, and visible
        /// coverage fractions sum to 1.
        #[test]
        fn viewport_center_visible(
            yaw in -PI..PI,
            pitch in -1.2f64..1.2,
            roll in -0.5f64..0.5,
        ) {
            let o = Orientation::new(yaw, pitch, roll);
            let vp = Viewport::headset(o);
            prop_assert!(vp.contains(o.direction()));
            let grid = TileGrid::new(4, 6);
            let vis = vp.visible_tiles(&grid, 12);
            let sum: f64 = vis.iter().map(|&(_, f)| f).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            // The tile under the gaze centre must be in the visible set.
            let center_tile = grid.tile_of_direction(o.direction());
            prop_assert!(vis.iter().any(|&(t, _)| t == center_tile));
        }

        /// Angular distance is symmetric and zero on self.
        #[test]
        fn angular_distance_symmetry(
            y1 in -PI..PI, p1 in -1.5f64..1.5,
            y2 in -PI..PI, p2 in -1.5f64..1.5,
        ) {
            let a = Orientation::new(y1, p1, 0.0);
            let b = Orientation::new(y2, p2, 0.0);
            // acos loses precision near antipodal pairs; 1e-7 rad is
            // far below any angular quantity the system cares about.
            prop_assert!((a.angular_distance(&b) - b.angular_distance(&a)).abs() < 1e-7);
            prop_assert!(a.angular_distance(&a) < 1e-7);
        }

        /// Grid distance is symmetric, zero on self, and bounded.
        #[test]
        fn grid_distance_properties(rows in 1u16..6, cols in 1u16..10, a in 0u16..60, b in 0u16..60) {
            let g = TileGrid::new(rows, cols);
            let n = g.tile_count() as u16;
            let ta = TileId(a % n);
            let tb = TileId(b % n);
            prop_assert_eq!(g.grid_distance(ta, tb), g.grid_distance(tb, ta));
            prop_assert_eq!(g.grid_distance(ta, ta), 0);
            prop_assert!(g.grid_distance(ta, tb) <= rows.max(cols));
        }
    }
}
