//! Guard-banded direction→tile classification.
//!
//! [`TileGrid::tile_of_direction`] costs two normalizations, an
//! `atan2` and an `asin` per query. Ray-grid visibility sampling
//! (256 rays per pose at the default density) spends most of the
//! edge-simulation sense phase inside exactly that chain. A
//! [`TileClassifier`] answers the same query with a handful of
//! multiply-compares — and it answers it **bit-identically**, which the
//! golden traces require.
//!
//! # Why comparisons can be exact
//!
//! The equirect tile of a direction depends only on which yaw sector
//! and pitch band the direction falls in. Sector membership is a sign
//! test against the boundary direction (a 2-D cross product); band
//! membership is a comparison of `z/|v|` against the sine of the
//! boundary pitch. Those tests involve rounding, and the exact path
//! (`normalize → normalize → atan2/asin → scale → floor`) involves
//! different rounding, so the two formulations could disagree — but
//! only for directions within a few ulps (≲1e-14 radians) of a tile
//! boundary. The classifier therefore keeps a **guard band** of 1e-9
//! radians around every boundary: queries inside any band take the
//! original exact path, queries outside are decided by comparisons that
//! provably agree with it (libm's `atan2`/`asin` are well under 1e-9
//! away from correctly rounded, and the floor-chain's flip points sit
//! within a few ulps of the true boundary). The band is ~10⁵× wider
//! than any rounding effect yet a 16×16 ray grid virtually never lands
//! in it, so the fast path serves ≫99.9% of real queries.
//!
//! The classifier accepts **unnormalized** vectors: callers that build
//! rays as `f + l·x + u·y` skip their own `normalized()` too (the
//! fallback normalizes exactly like the original call chain did).

use crate::tiling::{TileGrid, TileId};
use crate::vector::Vec3;
use std::f64::consts::{FRAC_PI_2, PI, TAU};

/// Half-width of the guard band: queries closer than this (radians for
/// yaw sectors, in `sin(pitch)` units for pitch bands — the two scales
/// differ by at most ~2.6× for the band boundaries of practical grids)
/// to a tile boundary are answered by the exact path.
const GUARD: f64 = 1e-9;

/// Precomputed boundary tables mapping directions to tiles of one
/// [`TileGrid`], bit-identical to
/// `grid.tile_of_direction(v.normalized())` by construction (see the
/// module docs for the argument; the test suite fuzzes it).
#[derive(Debug, Clone)]
pub struct TileClassifier {
    grid: TileGrid,
    /// `(cos θ_k, sin θ_k)` for the yaw sector boundaries
    /// `θ_k = −π + k·2π/cols`, `k = 0..cols`. Empty when `cols < 3`
    /// (those cases use dedicated tests below).
    col_bounds: Vec<(f64, f64)>,
    /// `sin(pitch_m)` for the pitch band boundaries
    /// `pitch_m = π/2 − m·π/rows`, `m = 1..rows`, strictly decreasing.
    row_sins: Vec<f64>,
}

impl TileClassifier {
    /// Tabulate the boundaries of `grid`.
    pub fn new(grid: TileGrid) -> TileClassifier {
        let cols = grid.cols as usize;
        let rows = grid.rows as usize;
        let col_bounds = if cols >= 3 {
            (0..cols)
                .map(|k| {
                    let th = -PI + k as f64 * (TAU / cols as f64);
                    (th.cos(), th.sin())
                })
                .collect()
        } else {
            Vec::new()
        };
        let row_sins = (1..rows)
            .map(|m| (FRAC_PI_2 - m as f64 * (PI / rows as f64)).sin())
            .collect();
        TileClassifier {
            grid,
            col_bounds,
            row_sins,
        }
    }

    /// The grid the tables were built for.
    pub fn grid(&self) -> TileGrid {
        self.grid
    }

    /// The exact path the classifier must agree with.
    #[cold]
    fn exact(&self, v: Vec3) -> TileId {
        self.grid.tile_of_direction(v.normalized())
    }

    /// The tile containing direction `v` (which need not be
    /// normalized); returns exactly what
    /// `grid.tile_of_direction(v.normalized())` returns.
    #[inline]
    pub fn classify(&self, v: Vec3) -> TileId {
        let (x, y, z) = (v.x, v.y, v.z);
        let n2 = x * x + y * y + z * z;
        // Degenerate or non-finite input: defer to the original chain
        // (which maps near-zero vectors to +X, NaN to tile 0).
        if !(n2.is_finite() && n2 >= 1e-24) {
            return self.exact(v);
        }

        // Yaw sector from the (x, y) components alone: membership in
        // sector k is a sign pattern over cross products against the
        // boundary directions. All comparisons carry a guard of
        // GUARD·(|x|+|y|), an angular band ≥ GUARD/√2 radians.
        let cols = self.grid.cols;
        let col = if cols == 1 {
            0u16
        } else if cols == 2 {
            // Boundaries at yaw 0 and ±π: both have y = 0.
            if y.abs() <= GUARD * (x.abs() + y.abs()) {
                return self.exact(v);
            }
            if y < 0.0 {
                0 // yaw ∈ (−π, 0) → u ∈ (0, 0.5)
            } else {
                1
            }
        } else {
            let g = GUARD * (x.abs() + y.abs());
            let nb = self.col_bounds.len();
            // c_k = sin(yaw − θ_k)·r flips sign exactly once around the
            // circle (+ arc then − arc, each spanning π > sector width),
            // so sector k is the single +→− transition.
            let mut col = u16::MAX;
            let mut first = 0.0f64;
            let mut prev = 0.0f64;
            for (k, &(ck, sk)) in self.col_bounds.iter().enumerate() {
                let c = ck * y - sk * x;
                if c.abs() <= g {
                    return self.exact(v);
                }
                if k == 0 {
                    first = c;
                } else if prev > 0.0 && c < 0.0 {
                    col = (k - 1) as u16;
                }
                prev = c;
            }
            if col == u16::MAX {
                // The transition wraps: sector nb−1 spans up to +π.
                if prev > 0.0 && first < 0.0 {
                    (nb - 1) as u16
                } else {
                    return self.exact(v);
                }
            } else {
                col
            }
        };

        // Pitch band from z/|v| against the boundary sines. Band
        // boundaries of an r-row grid satisfy |pitch_m| ≤ π/2 − π/r, so
        // d(sin)/d(pitch) ≥ sin(π/r) and the GUARD in sin-space covers
        // an angular band within ~2.6× of GUARD for r ≤ 8 (wider rows
        // are even safer). The pole clamps in the exact path only bite
        // strictly inside the extreme bands, never at a boundary.
        let row = if self.row_sins.is_empty() {
            0u16
        } else {
            let zn = z / n2.sqrt();
            let mut row = 0u16;
            for &zm in &self.row_sins {
                if (zn - zm).abs() <= GUARD {
                    return self.exact(v);
                }
                if zn < zm {
                    row += 1;
                }
            }
            row
        };

        self.grid.id_at(row, col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orientation::Orientation;

    fn grids() -> Vec<TileGrid> {
        vec![
            TileGrid::new(2, 4),
            TileGrid::new(4, 6),
            TileGrid::new(3, 7),
            TileGrid::new(1, 1),
            TileGrid::new(1, 2),
            TileGrid::new(2, 2),
            TileGrid::new(8, 12),
            TileGrid::new(5, 3),
        ]
    }

    #[test]
    fn matches_exact_on_angle_sweep() {
        for grid in grids() {
            let cls = TileClassifier::new(grid);
            for i in 0..360 {
                for j in 0..90 {
                    let yaw = (i as f64 - 180.0).to_radians() + 1e-4;
                    let pitch = (j as f64 * 2.0 - 89.0).to_radians() + 3e-5;
                    let d = Orientation::new(yaw, pitch, 0.0).direction() * 1.37;
                    assert_eq!(
                        cls.classify(d),
                        grid.tile_of_direction(d.normalized()),
                        "grid {grid:?} yaw {yaw} pitch {pitch}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_exact_at_and_near_boundaries() {
        // Directions straddling every yaw sector and pitch band
        // boundary at offsets spanning deep inside the guard band to
        // far outside it.
        let offsets = [
            0.0, 1e-16, -1e-16, 1e-12, -1e-12, 1e-10, -1e-10, 2e-9, -2e-9, 1e-7, -1e-7, 1e-3, -1e-3,
        ];
        for grid in grids() {
            let cls = TileClassifier::new(grid);
            for k in 0..grid.cols {
                let th = -PI + k as f64 * (TAU / grid.cols as f64);
                for &dy in &offsets {
                    for &pitch in &[-1.2, -0.3, 0.0, 0.4, 1.1] {
                        let d = Orientation::new(th + dy, pitch, 0.0).direction();
                        assert_eq!(
                            cls.classify(d),
                            grid.tile_of_direction(d.normalized()),
                            "grid {grid:?} col boundary {k} offset {dy}"
                        );
                    }
                }
            }
            for m in 1..grid.rows {
                let pm = FRAC_PI_2 - m as f64 * (PI / grid.rows as f64);
                for &dp in &offsets {
                    for &yaw in &[-3.0, -0.7, 0.0, 0.2, 2.9] {
                        let d = Orientation::new(yaw, pm + dp, 0.0).direction();
                        assert_eq!(
                            cls.classify(d),
                            grid.tile_of_direction(d.normalized()),
                            "grid {grid:?} row boundary {m} offset {dp}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn matches_exact_at_poles_wrap_and_degenerates() {
        let vecs = [
            Vec3::Z,
            -Vec3::Z,
            Vec3::new(1e-14, -3e-15, 0.9),
            Vec3::new(-1e-300, 1e-300, -1.0),
            Vec3::new(-1.0, 0.0, 0.0),
            Vec3::new(-1.0, -0.0, 0.0),
            Vec3::new(-1.0, 1e-13, 0.3),
            Vec3::new(-1.0, -1e-13, -0.3),
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1e-20, 0.0, 0.0),
            Vec3::X,
            Vec3::Y,
            -Vec3::Y,
        ];
        for grid in grids() {
            let cls = TileClassifier::new(grid);
            for &v in &vecs {
                assert_eq!(
                    cls.classify(v),
                    grid.tile_of_direction(v.normalized()),
                    "grid {grid:?} v {v:?}"
                );
            }
        }
    }

    #[test]
    fn matches_exact_on_pseudorandom_raw_vectors() {
        // Raw (unnormalized) vectors like the ray loop produces,
        // driven by a deterministic LCG.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * 6.0 - 3.0
        };
        for grid in grids() {
            let cls = TileClassifier::new(grid);
            for _ in 0..20_000 {
                let v = Vec3::new(next(), next(), next());
                assert_eq!(
                    cls.classify(v),
                    grid.tile_of_direction(v.normalized()),
                    "grid {grid:?} v {v:?}"
                );
            }
        }
    }
}
