//! The user's Field of View and its mapping onto tiles.
//!
//! "The width and height of the FoV are usually fixed parameters of a VR
//! headset" (§2). A [`Viewport`] is an orientation plus fixed angular
//! extents; its key operation is computing which tiles of a [`TileGrid`]
//! are visible, and with what share of the screen.

use crate::classifier::TileClassifier;
use crate::orientation::Orientation;
use crate::tiling::{TileGrid, TileId};
use crate::vector::Vec3;
use serde::{Deserialize, Serialize};

/// A field of view: where the user looks and how wide the headset sees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Viewport {
    /// Centre orientation (head pose).
    pub orientation: Orientation,
    /// Horizontal field of view, radians.
    pub hfov: f64,
    /// Vertical field of view, radians.
    pub vfov: f64,
}

impl Viewport {
    /// A typical Cardboard-class headset FoV: 100° × 90°.
    pub fn headset(orientation: Orientation) -> Viewport {
        Viewport {
            orientation,
            hfov: 100f64.to_radians(),
            vfov: 90f64.to_radians(),
        }
    }

    /// Construct with explicit FoV extents (radians).
    pub fn new(orientation: Orientation, hfov: f64, vfov: f64) -> Viewport {
        assert!(
            hfov > 0.0 && hfov < std::f64::consts::TAU,
            "hfov out of range"
        );
        assert!(
            vfov > 0.0 && vfov < std::f64::consts::PI,
            "vfov out of range"
        );
        Viewport {
            orientation,
            hfov,
            vfov,
        }
    }

    /// Whether a world direction falls inside the FoV frustum.
    pub fn contains(&self, dir: Vec3) -> bool {
        let (f, l, u) = self.orientation.basis();
        let d = dir.normalized();
        let df = d.dot(f);
        if df <= 0.0 {
            return false; // behind the viewer
        }
        let dl = d.dot(l);
        let du = d.dot(u);
        // Angular offsets in the camera frame.
        let h = dl.atan2(df).abs();
        let v = du.atan2((df * df + dl * dl).sqrt()).abs();
        h <= self.hfov / 2.0 && v <= self.vfov / 2.0
    }

    /// The world direction of a point on the viewport plane, with
    /// `(sx, sy)` in `[-1, 1]²` (`sx` left-positive, `sy` up-positive).
    pub fn ray(&self, sx: f64, sy: f64) -> Vec3 {
        let (f, l, u) = self.orientation.basis();
        let x = (self.hfov / 2.0).tan() * sx;
        let y = (self.vfov / 2.0).tan() * sy;
        (f + l * x + u * y).normalized()
    }

    /// Which tiles are on screen, and what fraction of the screen each
    /// covers. Computed by casting a `samples × samples` grid of rays
    /// (perspective-correct); fractions sum to 1.
    ///
    /// The returned list is ordered by decreasing coverage.
    ///
    /// Allocates the result and a counts buffer; steady-state callers
    /// should prefer [`Viewport::visible_tiles_into`] (zero allocation)
    /// or a [`crate::viscache::VisibilityCache`] (memoized).
    pub fn visible_tiles(&self, grid: &TileGrid, samples: u32) -> Vec<(TileId, f64)> {
        let mut out = Vec::new();
        self.visible_tiles_into(grid, samples, &mut VisibilityScratch::new(), &mut out);
        out
    }

    /// Allocation-free form of [`Viewport::visible_tiles`]: the ray-grid
    /// hit counts go into `scratch` (reused across calls) and the result
    /// replaces the contents of `out`. Once `scratch` and `out` have
    /// grown to the working size, repeated queries do zero heap
    /// allocation.
    ///
    /// Per-call invariants — the orientation basis, the tangents of the
    /// half-FoVs, and the per-row screen coordinate `sy` — are hoisted
    /// out of the inner loop. Each raw (unnormalized) ray is binned by
    /// a cached [`TileClassifier`], whose result is bit-identical to
    /// [`Viewport::ray`] followed by [`TileGrid::tile_of_direction`]
    /// (golden traces depend on this; see `classifier` module docs).
    pub fn visible_tiles_into(
        &self,
        grid: &TileGrid,
        samples: u32,
        scratch: &mut VisibilityScratch,
        out: &mut Vec<(TileId, f64)>,
    ) {
        assert!(samples >= 2, "need at least a 2x2 sample grid");
        let (cls, counts) = scratch.for_grid(grid);
        let n = samples;
        // Hoisted invariants: `ray` recomputes these for every sample.
        let (f, l, u) = self.orientation.basis();
        let tan_h = (self.hfov / 2.0).tan();
        let tan_v = (self.vfov / 2.0).tan();
        for iy in 0..n {
            // Sample cell centres, not edges, to avoid double-counting corners.
            let sy = (iy as f64 + 0.5) / n as f64 * 2.0 - 1.0;
            // `u * y` is constant along a row; `(f + l*x) + u*y` keeps
            // the addition order of `ray`.
            let uy = u * (tan_v * sy);
            for ix in 0..n {
                let sx = (ix as f64 + 0.5) / n as f64 * 2.0 - 1.0;
                counts[cls.classify(f + l * (tan_h * sx) + uy).index()] += 1;
            }
        }
        let total = (n * n) as f64;
        out.clear();
        out.extend(
            counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, &c)| (TileId(i as u16), c as f64 / total)),
        );
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN").then(a.0.cmp(&b.0)));
    }

    /// Just the set of visible tile ids (sorted by id), using the default
    /// sampling density.
    pub fn visible_tile_set(&self, grid: &TileGrid) -> Vec<TileId> {
        let mut tiles = Vec::new();
        self.visible_tile_set_into(grid, &mut VisibilityScratch::new(), &mut tiles);
        tiles
    }

    /// Scratch-reusing form of [`Viewport::visible_tile_set`]: the set
    /// of tiles with at least one ray hit, in ascending id order (the
    /// order a coverage sort followed by an id sort would produce), at
    /// the same default sampling density. Skips the coverage fractions
    /// and both sorts entirely — hit tiles are read straight out of the
    /// count buffer in index order — so the result is identical to
    /// `visible_tile_set` by construction.
    pub fn visible_tile_set_into(
        &self,
        grid: &TileGrid,
        scratch: &mut VisibilityScratch,
        out: &mut Vec<TileId>,
    ) {
        let (cls, counts) = scratch.for_grid(grid);
        let n = 16u32;
        let (f, l, u) = self.orientation.basis();
        let tan_h = (self.hfov / 2.0).tan();
        let tan_v = (self.vfov / 2.0).tan();
        for iy in 0..n {
            let sy = (iy as f64 + 0.5) / n as f64 * 2.0 - 1.0;
            let uy = u * (tan_v * sy);
            for ix in 0..n {
                let sx = (ix as f64 + 0.5) / n as f64 * 2.0 - 1.0;
                counts[cls.classify(f + l * (tan_h * sx) + uy).index()] += 1;
            }
        }
        out.clear();
        out.extend(
            counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, _)| TileId(i as u16)),
        );
    }

    /// Fraction of the screen covered by `tile` (0 when off screen).
    ///
    /// Counts hits on the one queried tile directly instead of building
    /// (and sorting) the full visible list just to extract a single
    /// entry. The sampling arithmetic is identical to
    /// [`Viewport::visible_tiles`], so the returned fraction matches it
    /// bit for bit.
    pub fn tile_coverage(&self, grid: &TileGrid, tile: TileId, samples: u32) -> f64 {
        assert!(samples >= 2, "need at least a 2x2 sample grid");
        let n = samples;
        let (f, l, u) = self.orientation.basis();
        let tan_h = (self.hfov / 2.0).tan();
        let tan_v = (self.vfov / 2.0).tan();
        let mut hits = 0u32;
        for iy in 0..n {
            let sy = (iy as f64 + 0.5) / n as f64 * 2.0 - 1.0;
            let uy = u * (tan_v * sy);
            for ix in 0..n {
                let sx = (ix as f64 + 0.5) / n as f64 * 2.0 - 1.0;
                let dir = (f + l * (tan_h * sx) + uy).normalized();
                if grid.tile_of_direction(dir) == tile {
                    hits += 1;
                }
            }
        }
        if hits == 0 {
            0.0
        } else {
            hits as f64 / (n * n) as f64
        }
    }
}

/// Batched form of [`Viewport::visible_tiles_into`] for many poses
/// sharing one FoV: the FoV tangents and the `samples × samples` screen
/// coordinates are computed once and reused for every orientation,
/// instead of once per pose. For each pose the per-sample arithmetic is
/// operation-for-operation identical to `visible_tiles_into`
/// (pre-scaling the screen coordinates by the tangents yields the exact
/// f64 the per-pose path computes inline), so every emitted list is
/// bit-identical to a one-off query — the differential engine harness
/// depends on this.
///
/// `emit` is called once per orientation, in slice order, with the pose
/// index and its coverage list ordered by decreasing coverage. The list
/// borrows a buffer reused across poses; copy out what you keep.
pub fn visible_tiles_batch(
    grid: &TileGrid,
    hfov: f64,
    vfov: f64,
    orientations: &[Orientation],
    samples: u32,
    scratch: &mut VisibilityScratch,
    mut emit: impl FnMut(usize, &[(TileId, f64)]),
) {
    assert!(samples >= 2, "need at least a 2x2 sample grid");
    let n = samples;
    let tan_h = (hfov / 2.0).tan();
    let tan_v = (vfov / 2.0).tan();
    // Screen coordinates are pose-independent: hoist them across the
    // whole batch, pre-multiplied by the half-FoV tangents.
    let xs: Vec<f64> = (0..n)
        .map(|ix| tan_h * ((ix as f64 + 0.5) / n as f64 * 2.0 - 1.0))
        .collect();
    let ys: Vec<f64> = (0..n)
        .map(|iy| tan_v * ((iy as f64 + 0.5) / n as f64 * 2.0 - 1.0))
        .collect();
    let total = (n * n) as f64;
    let mut out: Vec<(TileId, f64)> = Vec::new();
    for (pose, &orientation) in orientations.iter().enumerate() {
        let (cls, counts) = scratch.for_grid(grid);
        let (f, l, u) = orientation.basis();
        for &y in &ys {
            let uy = u * y;
            for &x in &xs {
                counts[cls.classify(f + l * x + uy).index()] += 1;
            }
        }
        out.clear();
        out.extend(
            counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, &c)| (TileId(i as u16), c as f64 / total)),
        );
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN").then(a.0.cmp(&b.0)));
        emit(pose, &out);
    }
}

/// Reusable buffers for [`Viewport::visible_tiles_into`]: holds the
/// per-tile ray-hit counts between queries so the steady state does no
/// heap allocation. One scratch serves any grid shape (the buffer is
/// resized, not reallocated, once it has reached the largest tile count
/// seen).
#[derive(Debug, Clone, Default)]
pub struct VisibilityScratch {
    counts: Vec<u32>,
    classifier: Option<TileClassifier>,
}

impl VisibilityScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> VisibilityScratch {
        VisibilityScratch::default()
    }

    /// The cached classifier for `grid` (rebuilt if the grid changed
    /// since the last query) plus the zeroed count buffer.
    fn for_grid(&mut self, grid: &TileGrid) -> (&TileClassifier, &mut Vec<u32>) {
        if self.classifier.as_ref().map(|c| c.grid()) != Some(*grid) {
            self.classifier = Some(TileClassifier::new(*grid));
        }
        self.counts.clear();
        self.counts.resize(grid.tile_count(), 0);
        (
            self.classifier.as_ref().expect("just set"),
            &mut self.counts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angles::deg;

    #[test]
    fn contains_center_and_rejects_behind() {
        let vp = Viewport::headset(Orientation::FRONT);
        assert!(vp.contains(Vec3::X));
        assert!(!vp.contains(-Vec3::X));
        assert!(
            !vp.contains(Vec3::Z),
            "straight up is outside a 90-degree vfov"
        );
    }

    #[test]
    fn contains_respects_fov_edges() {
        let vp = Viewport::new(Orientation::FRONT, deg(100.0), deg(90.0));
        let just_in = Orientation::from_degrees(49.0, 0.0, 0.0).direction();
        let just_out = Orientation::from_degrees(51.0, 0.0, 0.0).direction();
        assert!(vp.contains(just_in));
        assert!(!vp.contains(just_out));
        let up_in = Orientation::from_degrees(0.0, 44.0, 0.0).direction();
        let up_out = Orientation::from_degrees(0.0, 46.0, 0.0).direction();
        assert!(vp.contains(up_in));
        assert!(!vp.contains(up_out));
    }

    #[test]
    fn ray_center_is_view_direction() {
        let o = Orientation::from_degrees(40.0, 20.0, 0.0);
        let vp = Viewport::headset(o);
        assert!(vp.ray(0.0, 0.0).angle_to(o.direction()) < 1e-9);
    }

    #[test]
    fn rays_stay_inside_fov() {
        let vp = Viewport::headset(Orientation::from_degrees(30.0, -10.0, 15.0));
        for &(sx, sy) in &[(-0.99, -0.99), (0.99, 0.99), (-0.99, 0.99), (0.5, -0.5)] {
            assert!(
                vp.contains(vp.ray(sx, sy)),
                "ray ({sx},{sy}) escaped the FoV"
            );
        }
    }

    #[test]
    fn visible_fractions_sum_to_one() {
        let grid = TileGrid::new(4, 6);
        let vp = Viewport::headset(Orientation::from_degrees(77.0, 13.0, 0.0));
        let vis = vp.visible_tiles(&grid, 32);
        let sum: f64 = vis.iter().map(|&(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(!vis.is_empty());
    }

    #[test]
    fn front_viewport_sees_center_tiles_of_2x4() {
        let grid = TileGrid::sperke_prototype();
        let vp = Viewport::headset(Orientation::FRONT);
        let tiles = vp.visible_tile_set(&grid);
        // Front viewport straddles pitch 0 (both rows) around yaw 0
        // (columns 1-2 of the 4): at minimum the four central tiles.
        for t in [grid.id_at(0, 2), grid.id_at(1, 2)] {
            assert!(tiles.contains(&t), "expected {t} visible, got {tiles:?}");
        }
        assert!(
            tiles.len() < grid.tile_count(),
            "FoV must not cover everything"
        );
    }

    #[test]
    fn coverage_of_hidden_tile_is_zero() {
        let grid = TileGrid::new(4, 6);
        let vp = Viewport::headset(Orientation::FRONT);
        // The tile behind the viewer:
        let behind = grid.tile_of_direction(-Vec3::X);
        assert_eq!(vp.tile_coverage(&grid, behind, 24), 0.0);
    }

    #[test]
    fn wider_fov_sees_no_fewer_tiles() {
        let grid = TileGrid::new(4, 8);
        let o = Orientation::from_degrees(12.0, 5.0, 0.0);
        let narrow = Viewport::new(o, deg(60.0), deg(50.0)).visible_tile_set(&grid);
        let wide = Viewport::new(o, deg(120.0), deg(100.0)).visible_tile_set(&grid);
        assert!(wide.len() >= narrow.len());
        for t in &narrow {
            assert!(wide.contains(t), "narrow tile {t} missing from wide set");
        }
    }

    #[test]
    #[should_panic]
    fn zero_fov_rejected() {
        Viewport::new(Orientation::FRONT, 0.0, 1.0);
    }

    #[test]
    fn scratch_api_matches_allocating_api_bitwise() {
        let grid = TileGrid::new(4, 6);
        let mut scratch = VisibilityScratch::new();
        let mut out = Vec::new();
        for (i, &(yaw, pitch, roll)) in [
            (0.0, 0.0, 0.0),
            (77.0, 13.0, 0.0),
            (-130.0, -40.0, 12.0),
            (179.0, 60.0, -25.0),
        ]
        .iter()
        .enumerate()
        {
            let vp = Viewport::headset(Orientation::from_degrees(yaw, pitch, roll));
            let samples = 8 + 4 * i as u32;
            vp.visible_tiles_into(&grid, samples, &mut scratch, &mut out);
            let fresh = vp.visible_tiles(&grid, samples);
            assert_eq!(out.len(), fresh.len());
            for (a, b) in out.iter().zip(&fresh) {
                assert_eq!(a.0, b.0);
                assert_eq!(
                    a.1.to_bits(),
                    b.1.to_bits(),
                    "coverage must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn batch_visibility_matches_per_pose_bitwise() {
        let grid = TileGrid::new(4, 6);
        let poses: Vec<Orientation> = (0..20)
            .map(|i| {
                Orientation::from_degrees(
                    (i as f64 * 47.0) % 360.0 - 180.0,
                    (i as f64 * 13.0) % 120.0 - 60.0,
                    (i as f64 * 5.0) % 30.0 - 15.0,
                )
            })
            .collect();
        let hfov = 100f64.to_radians();
        let vfov = 90f64.to_radians();
        let mut scratch = VisibilityScratch::new();
        let mut batch: Vec<Vec<(TileId, f64)>> = Vec::new();
        visible_tiles_batch(&grid, hfov, vfov, &poses, 12, &mut scratch, |i, vis| {
            assert_eq!(i, batch.len());
            batch.push(vis.to_vec());
        });
        assert_eq!(batch.len(), poses.len());
        let mut out = Vec::new();
        for (i, &o) in poses.iter().enumerate() {
            Viewport::new(o, hfov, vfov).visible_tiles_into(&grid, 12, &mut scratch, &mut out);
            assert_eq!(batch[i].len(), out.len(), "pose {i}");
            for (a, b) in batch[i].iter().zip(&out) {
                assert_eq!(a.0, b.0, "pose {i}");
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "pose {i} coverage bits");
            }
        }
    }

    #[test]
    fn tile_coverage_matches_visible_tiles_bitwise() {
        let grid = TileGrid::new(4, 6);
        let vp = Viewport::headset(Orientation::from_degrees(42.0, -17.0, 8.0));
        let vis = vp.visible_tiles(&grid, 24);
        for tile in grid.tiles() {
            let direct = vp.tile_coverage(&grid, tile, 24);
            let from_list = vis
                .iter()
                .find(|&&(t, _)| t == tile)
                .map(|&(_, f)| f)
                .unwrap_or(0.0);
            assert_eq!(
                direct.to_bits(),
                from_list.to_bits(),
                "tile {tile} coverage drifted: direct {direct} vs list {from_list}"
            );
        }
    }
}
