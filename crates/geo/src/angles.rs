//! Angle utilities: wrapping, conversion, angular differences.

use std::f64::consts::{PI, TAU};

/// Convert degrees to radians.
pub fn deg(degrees: f64) -> f64 {
    degrees * PI / 180.0
}

/// Convert radians to degrees.
pub fn to_degrees(radians: f64) -> f64 {
    radians * 180.0 / PI
}

/// Wrap an angle to `[-π, π)`.
pub fn wrap_pi(a: f64) -> f64 {
    let mut x = (a + PI) % TAU;
    if x < 0.0 {
        x += TAU;
    }
    x - PI
}

/// Wrap an angle to `[0, 2π)`.
pub fn wrap_tau(a: f64) -> f64 {
    let mut x = a % TAU;
    if x < 0.0 {
        x += TAU;
    }
    x
}

/// Smallest signed difference `a - b`, wrapped to `[-π, π)`.
pub fn angle_diff(a: f64, b: f64) -> f64 {
    wrap_pi(a - b)
}

/// Absolute angular distance between two angles, in `[0, π]`.
pub fn angle_dist(a: f64, b: f64) -> f64 {
    angle_diff(a, b).abs()
}

/// Unwrap a sequence of angles so consecutive samples never jump by more
/// than π (useful before fitting a line to yaw history).
pub fn unwrap_angles(angles: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(angles.len());
    let mut offset = 0.0;
    for (i, &a) in angles.iter().enumerate() {
        if i > 0 {
            let prev = out[i - 1] - offset; // previous raw-ish value
            let d = a - prev;
            if d > PI {
                offset -= TAU;
            } else if d < -PI {
                offset += TAU;
            }
        }
        out.push(a + offset);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert!((deg(180.0) - PI).abs() < 1e-12);
        assert!((to_degrees(PI / 2.0) - 90.0).abs() < 1e-12);
    }

    #[test]
    fn wrap_pi_range() {
        assert!((wrap_pi(3.0 * PI) - (-PI)).abs() < 1e-9);
        assert!((wrap_pi(-3.0 * PI) - (-PI)).abs() < 1e-9);
        assert_eq!(wrap_pi(0.0), 0.0);
        for k in -5..=5 {
            let a = 0.3 + k as f64 * TAU;
            assert!((wrap_pi(a) - 0.3).abs() < 1e-9);
        }
    }

    #[test]
    fn wrap_tau_range() {
        assert!((wrap_tau(-0.5) - (TAU - 0.5)).abs() < 1e-12);
        assert!((wrap_tau(TAU + 0.25) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn diff_takes_short_way_round() {
        // 350° vs 10°: short way is -20°, not +340°.
        let a = deg(350.0);
        let b = deg(10.0);
        assert!((angle_diff(a, b) - deg(-20.0)).abs() < 1e-9);
        assert!((angle_dist(a, b) - deg(20.0)).abs() < 1e-9);
    }

    #[test]
    fn unwrap_removes_jumps() {
        let seq = vec![deg(170.0), deg(-170.0), deg(-150.0)];
        let un = unwrap_angles(&seq);
        assert!((un[1] - deg(190.0)).abs() < 1e-9);
        assert!((un[2] - deg(210.0)).abs() < 1e-9);
        // consecutive diffs all small
        for w in un.windows(2) {
            assert!((w[1] - w[0]).abs() < PI);
        }
    }

    #[test]
    fn unwrap_identity_for_smooth() {
        let seq: Vec<f64> = (0..10).map(|i| i as f64 * 0.1).collect();
        assert_eq!(unwrap_angles(&seq), seq);
    }
}
