//! The decoding scheduler (§3.5): "a decoding scheduler that assigns
//! encoded chunks to decoders based on their playback time and HMP".
//!
//! Decoders are modelled as N parallel servers; jobs run on the
//! earliest-free decoder. The render loop submits jobs in priority
//! order (needed-now first, HMP-prefetch second), so earliest-free
//! assignment realizes the intended schedule.

use crate::cache::FrameKey;
use serde::{Deserialize, Serialize};
use sperke_sim::{SimDuration, SimTime};

/// A decode job's completion record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodeCompletion {
    /// What was decoded.
    pub key: FrameKey,
    /// Which decoder ran it.
    pub decoder: usize,
    /// When it finished.
    pub finished: SimTime,
}

/// N parallel hardware decoders.
#[derive(Debug, Clone)]
pub struct DecoderPool {
    busy_until: Vec<SimTime>,
    /// Total busy time per decoder (utilization accounting).
    busy_time: Vec<SimDuration>,
    jobs: u64,
}

impl DecoderPool {
    /// A pool of `n` idle decoders.
    pub fn new(n: usize) -> DecoderPool {
        assert!(n > 0, "need at least one decoder");
        DecoderPool {
            busy_until: vec![SimTime::ZERO; n],
            busy_time: vec![SimDuration::ZERO; n],
            jobs: 0,
        }
    }

    /// Number of decoders.
    pub fn len(&self) -> usize {
        self.busy_until.len()
    }

    /// Never true; pools are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        self.busy_until.is_empty()
    }

    /// When the next decoder becomes free (≥ `now`).
    pub fn next_free(&self, now: SimTime) -> SimTime {
        self.busy_until
            .iter()
            .map(|&b| b.max(now))
            .min()
            .expect("non-empty pool")
    }

    /// Submit a decode job at `now`; it runs on the earliest-free
    /// decoder for `duration`.
    pub fn submit(
        &mut self,
        key: FrameKey,
        now: SimTime,
        duration: SimDuration,
    ) -> DecodeCompletion {
        let decoder = (0..self.busy_until.len())
            .min_by_key(|&i| (self.busy_until[i].max(now), i))
            .expect("non-empty pool");
        let start = self.busy_until[decoder].max(now);
        let finished = start + duration;
        self.busy_until[decoder] = finished;
        self.busy_time[decoder] += duration;
        self.jobs += 1;
        DecodeCompletion {
            key,
            decoder,
            finished,
        }
    }

    /// Jobs processed so far.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Mean decoder utilization over `elapsed` wall time. Work queued
    /// beyond `elapsed` (prefetch backlog) extends the accounting
    /// horizon so the figure stays in `[0, 1]`.
    pub fn utilization(&self, elapsed: SimDuration) -> f64 {
        let backlog_end = self
            .busy_until
            .iter()
            .max()
            .copied()
            .unwrap_or(SimTime::ZERO)
            .saturating_since(SimTime::ZERO);
        let horizon = elapsed.max(backlog_end);
        if horizon.is_zero() {
            return 0.0;
        }
        let total: f64 = self.busy_time.iter().map(|d| d.as_secs_f64()).sum();
        total / (horizon.as_secs_f64() * self.busy_until.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sperke_geo::TileId;

    fn key(frame: u64, tile: u16) -> FrameKey {
        FrameKey {
            frame,
            tile: TileId(tile),
        }
    }

    const MS10: SimDuration = SimDuration::from_millis(10);

    #[test]
    fn parallel_jobs_spread_across_decoders() {
        let mut pool = DecoderPool::new(4);
        let completions: Vec<_> = (0..4)
            .map(|i| pool.submit(key(0, i), SimTime::ZERO, MS10))
            .collect();
        // All four finish at 10 ms on distinct decoders.
        for c in &completions {
            assert_eq!(c.finished, SimTime::from_millis(10));
        }
        let decoders: std::collections::HashSet<_> =
            completions.iter().map(|c| c.decoder).collect();
        assert_eq!(decoders.len(), 4);
    }

    #[test]
    fn overload_queues_on_earliest_free() {
        let mut pool = DecoderPool::new(2);
        for i in 0..4 {
            pool.submit(key(0, i), SimTime::ZERO, MS10);
        }
        let fifth = pool.submit(key(0, 4), SimTime::ZERO, MS10);
        assert_eq!(fifth.finished, SimTime::from_millis(30));
    }

    #[test]
    fn next_free_reflects_backlog() {
        let mut pool = DecoderPool::new(2);
        assert_eq!(pool.next_free(SimTime::ZERO), SimTime::ZERO);
        pool.submit(key(0, 0), SimTime::ZERO, MS10);
        assert_eq!(
            pool.next_free(SimTime::ZERO),
            SimTime::ZERO,
            "second decoder idle"
        );
        pool.submit(key(0, 1), SimTime::ZERO, MS10);
        assert_eq!(pool.next_free(SimTime::ZERO), SimTime::from_millis(10));
    }

    #[test]
    fn utilization_accounting() {
        let mut pool = DecoderPool::new(2);
        pool.submit(key(0, 0), SimTime::ZERO, MS10);
        // One of two decoders busy 10 ms over 20 ms elapsed = 25 %.
        assert!((pool.utilization(SimDuration::from_millis(20)) - 0.25).abs() < 1e-12);
        assert_eq!(pool.jobs(), 1);
    }

    #[test]
    fn more_decoders_finish_batches_sooner() {
        let batch = |n: usize| {
            let mut pool = DecoderPool::new(n);
            (0..8)
                .map(|i| pool.submit(key(0, i), SimTime::ZERO, MS10).finished)
                .max()
                .unwrap()
        };
        assert_eq!(batch(1), SimTime::from_millis(80));
        assert_eq!(batch(4), SimTime::from_millis(20));
        assert_eq!(batch(8), SimTime::from_millis(10));
    }

    #[test]
    #[should_panic]
    fn zero_pool_rejected() {
        DecoderPool::new(0);
    }
}
