//! # sperke-pipeline — the client decode/render pipeline (§3.5)
//!
//! A cost-model simulation of the Sperke prototype's playback path:
//! parallel hardware decoders ([`DecoderPool`]), the OpenGL-FBO
//! decoded-frame cache ([`DecodedFrameCache`]), and the render loop
//! ([`simulate_render`]) measured under the three configurations of the
//! paper's Figure 5 ([`figure5`]): 11 FPS without optimization, ~53 FPS
//! with parallel decoding + caching, ~120 FPS rendering only FoV tiles.
//!
//! ```
//! use sperke_pipeline::{figure5, DeviceProfile, SourceVideo};
//! use sperke_geo::{Orientation, TileGrid};
//! use sperke_hmp::HeadTrace;
//! use sperke_sim::SimDuration;
//!
//! let trace = HeadTrace::from_fn(SimDuration::from_secs(5), |_| Orientation::FRONT);
//! let results = figure5(
//!     &DeviceProfile::galaxy_s7(),
//!     SourceVideo::two_k(),
//!     &TileGrid::sperke_prototype(),
//!     &trace,
//!     SimDuration::from_secs(3),
//! );
//! assert!(results[0].1.fps < results[1].1.fps);
//! assert!(results[1].1.fps < results[2].1.fps);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod device;
pub mod energy;
pub mod render;
pub mod scheduler;

pub use cache::{CacheStats, DecodedFrameCache, FrameKey};
pub use device::{DeviceProfile, SourceVideo};
pub use energy::{energy_of, energy_of_mode, EnergyProfile, EnergyReport};
pub use render::{figure5, simulate_render, PipelineConfig, RenderMode, RenderStats};
pub use scheduler::{DecodeCompletion, DecoderPool};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use sperke_geo::{Orientation, TileGrid};
    use sperke_hmp::HeadTrace;
    use sperke_sim::{SimDuration, SimTime};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// FPS is always positive and consistent with frames/elapsed,
        /// for any device scaling and mode.
        #[test]
        fn render_stats_sane(
            decoders in 1usize..16,
            mode_idx in 0usize..3,
            rows in 1u16..4,
            cols in 2u16..8,
        ) {
            let device = DeviceProfile::galaxy_s7().with_decoders(decoders);
            let grid = TileGrid::new(rows, cols);
            let trace = HeadTrace::from_fn(SimDuration::from_secs(5), |t| {
                Orientation::new(0.2 * t.as_secs_f64(), 0.0, 0.0)
            });
            let stats = simulate_render(
                &device,
                SourceVideo::two_k(),
                &grid,
                &trace,
                RenderMode::ALL[mode_idx],
                &PipelineConfig::default(),
                SimDuration::from_secs(2),
            );
            prop_assert!(stats.fps > 0.0);
            prop_assert!(stats.frames > 0);
            prop_assert!((0.0..=1.0).contains(&stats.cache_hit_rate));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&stats.decoder_utilization));
        }

        /// The decoder pool conserves work: batch makespan equals
        /// ceil(jobs / decoders) * job duration for uniform jobs.
        #[test]
        fn pool_makespan_formula(n in 1usize..12, jobs in 1usize..40) {
            let mut pool = DecoderPool::new(n);
            let d = SimDuration::from_millis(7);
            let makespan = (0..jobs)
                .map(|i| pool.submit(
                    FrameKey { frame: 0, tile: sperke_geo::TileId(i as u16) },
                    SimTime::ZERO, d).finished)
                .max()
                .unwrap();
            let expect = d * jobs.div_ceil(n) as u64;
            prop_assert_eq!(makespan, SimTime::ZERO + expect);
        }
    }
}
