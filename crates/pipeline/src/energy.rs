//! Client energy model.
//!
//! §2 cites power evaluations of 360° VR streaming on head-mounted
//! displays \[30\]; §3.5 names "limited computation and energy resources
//! on the client side" as the critical constraint. This model prices a
//! render configuration in joules so the Figure-5 optimizations can be
//! judged on battery life as well as FPS.

use crate::render::RenderStats;
use serde::{Deserialize, Serialize};

/// Per-operation energy costs of a device (millijoules).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyProfile {
    /// Decode energy per tile-frame, mJ.
    pub decode_mj_per_tile: f64,
    /// GPU draw energy per tile per rendered frame, mJ.
    pub draw_mj_per_tile: f64,
    /// Baseline platform power (display, sensors, OS), watts.
    pub base_watts: f64,
    /// Radio energy per megabyte downloaded, joules.
    pub radio_j_per_mb: f64,
    /// Battery capacity, joules (SGS7: 3000 mAh @ 3.85 V ≈ 41.6 kJ).
    pub battery_joules: f64,
}

impl EnergyProfile {
    /// Galaxy-S7-class constants.
    pub fn galaxy_s7() -> EnergyProfile {
        EnergyProfile {
            decode_mj_per_tile: 22.0,
            draw_mj_per_tile: 6.0,
            base_watts: 1.6,
            radio_j_per_mb: 0.9,
            battery_joules: 41_600.0,
        }
    }
}

/// Energy breakdown of a playback period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Decode energy, joules.
    pub decode_j: f64,
    /// Render energy, joules.
    pub render_j: f64,
    /// Baseline platform energy, joules.
    pub base_j: f64,
    /// Radio energy, joules.
    pub radio_j: f64,
    /// Total, joules.
    pub total_j: f64,
    /// Mean power, watts.
    pub mean_watts: f64,
    /// Projected playback hours on a full battery at this power.
    pub battery_hours: f64,
}

/// Price a render run plus its network traffic.
///
/// `tiles_rendered_per_frame` and `tiles_decoded_per_second` come from
/// the pipeline's configuration (all tiles vs FoV-only);
/// `bytes_downloaded` from the streaming session.
pub fn energy_of(
    profile: &EnergyProfile,
    stats: &RenderStats,
    tiles_rendered_per_frame: f64,
    tiles_decoded_per_second: f64,
    bytes_downloaded: u64,
) -> EnergyReport {
    let secs = stats.elapsed.as_secs_f64().max(1e-9);
    let decode_j = tiles_decoded_per_second * secs * profile.decode_mj_per_tile / 1000.0;
    let render_j =
        stats.frames as f64 * tiles_rendered_per_frame * profile.draw_mj_per_tile / 1000.0;
    let base_j = profile.base_watts * secs;
    let radio_j = bytes_downloaded as f64 / 1e6 * profile.radio_j_per_mb;
    let total_j = decode_j + render_j + base_j + radio_j;
    let mean_watts = total_j / secs;
    EnergyReport {
        decode_j,
        render_j,
        base_j,
        radio_j,
        total_j,
        mean_watts,
        battery_hours: profile.battery_joules / mean_watts / 3600.0,
    }
}

/// Convenience: energy of one Figure-5 configuration, assuming the
/// source-rate decode load implied by the mode.
pub fn energy_of_mode(
    profile: &EnergyProfile,
    stats: &RenderStats,
    mode: crate::render::RenderMode,
    grid_tiles: usize,
    visible_tiles: usize,
    source_fps: f64,
    bytes_downloaded: u64,
) -> EnergyReport {
    use crate::render::RenderMode;
    let (rendered, decoded_per_sec) = match mode {
        // Unoptimized: re-decodes every tile for every rendered frame.
        RenderMode::UnoptimizedAll => (grid_tiles as f64, grid_tiles as f64 * stats.fps),
        // Optimized: decodes at the source rate only.
        RenderMode::OptimizedAll => (grid_tiles as f64, grid_tiles as f64 * source_fps),
        RenderMode::OptimizedFov => (visible_tiles as f64, visible_tiles as f64 * source_fps),
    };
    energy_of(profile, stats, rendered, decoded_per_sec, bytes_downloaded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::{simulate_render, PipelineConfig, RenderMode};
    use crate::{DeviceProfile, SourceVideo};
    use sperke_geo::TileGrid;
    use sperke_hmp::HeadTrace;
    use sperke_sim::SimDuration;

    fn stats(mode: RenderMode) -> RenderStats {
        let trace = HeadTrace::from_fn(SimDuration::from_secs(10), |_| {
            sperke_geo::Orientation::FRONT
        });
        simulate_render(
            &DeviceProfile::galaxy_s7(),
            SourceVideo::two_k(),
            &TileGrid::sperke_prototype(),
            &trace,
            mode,
            &PipelineConfig::default(),
            SimDuration::from_secs(5),
        )
    }

    #[test]
    fn totals_add_up() {
        let profile = EnergyProfile::galaxy_s7();
        let s = stats(RenderMode::OptimizedAll);
        let e = energy_of(&profile, &s, 8.0, 240.0, 10_000_000);
        let sum = e.decode_j + e.render_j + e.base_j + e.radio_j;
        assert!((sum - e.total_j).abs() < 1e-9);
        assert!(e.mean_watts > profile.base_watts);
        assert!(
            e.battery_hours > 0.5 && e.battery_hours < 12.0,
            "{}",
            e.battery_hours
        );
    }

    #[test]
    fn fov_only_mode_saves_energy() {
        let profile = EnergyProfile::galaxy_s7();
        let grid = TileGrid::sperke_prototype();
        let all = stats(RenderMode::OptimizedAll);
        let fov = stats(RenderMode::OptimizedFov);
        let e_all = energy_of_mode(
            &profile,
            &all,
            RenderMode::OptimizedAll,
            grid.tile_count(),
            4,
            30.0,
            0,
        );
        let e_fov = energy_of_mode(
            &profile,
            &fov,
            RenderMode::OptimizedFov,
            grid.tile_count(),
            4,
            30.0,
            0,
        );
        // FoV-only renders faster (more frames) but decodes/draws fewer
        // tiles; per unit time it must still be cheaper on decode.
        assert!(e_fov.decode_j < e_all.decode_j);
        assert!(e_fov.battery_hours > e_all.battery_hours * 0.9);
    }

    #[test]
    fn unoptimized_mode_burns_decode_energy_per_rendered_frame() {
        let profile = EnergyProfile::galaxy_s7();
        let un = stats(RenderMode::UnoptimizedAll);
        let opt = stats(RenderMode::OptimizedAll);
        let grid = TileGrid::sperke_prototype();
        let e_un = energy_of_mode(
            &profile,
            &un,
            RenderMode::UnoptimizedAll,
            grid.tile_count(),
            4,
            30.0,
            0,
        );
        let e_opt = energy_of_mode(
            &profile,
            &opt,
            RenderMode::OptimizedAll,
            grid.tile_count(),
            4,
            30.0,
            0,
        );
        // Optimized decodes at the source rate (30 fps x 8 tiles =
        // 240/s); unoptimized re-decodes per rendered frame (11 fps x 8
        // = 88/s), so its decode power is actually lower — but it
        // delivers 5x fewer frames, so energy *per rendered frame* is
        // what suffers.
        let per_frame_un = e_un.total_j / un.frames as f64;
        let per_frame_opt = e_opt.total_j / opt.frames as f64;
        assert!(
            per_frame_un > per_frame_opt * 2.0,
            "unoptimized J/frame {per_frame_un:.4} vs optimized {per_frame_opt:.4}"
        );
    }

    #[test]
    fn radio_energy_scales_with_bytes() {
        let profile = EnergyProfile::galaxy_s7();
        let s = stats(RenderMode::OptimizedAll);
        let small = energy_of(&profile, &s, 8.0, 240.0, 1_000_000);
        let large = energy_of(&profile, &s, 8.0, 240.0, 100_000_000);
        assert!(large.radio_j > small.radio_j * 50.0);
    }
}
