//! The decoded-frame cache (§3.5): "a decoded chunk cache (implemented
//! using OpenGL ES Framebuffer Objects) that stores uncompressed video
//! chunks in the video memory. Doing so allows decoders to work
//! asynchronously, leading to a higher frame rate. More importantly,
//! when a previous HMP is inaccurate, the cache allows a FoV to be
//! quickly shifted by only changing the 'delta' tiles without
//! re-decoding the entire FoV."

use serde::{Deserialize, Serialize};
use sperke_geo::TileId;
use std::collections::HashMap;

/// Key of a cached decoded tile frame: (source frame index, tile).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FrameKey {
    /// Source video frame index.
    pub frame: u64,
    /// Tile.
    pub tile: TileId,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found the decoded frame resident.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0,1]`; 0 when never queried.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A capacity-bounded decoded-frame cache with FIFO-by-insertion
/// eviction (decoded video frames age out in decode order, matching the
/// prototype's ring of FBOs). Capacity 0 disables caching entirely —
/// the "without optimization" configuration of Figure 5.
#[derive(Debug, Clone)]
pub struct DecodedFrameCache {
    capacity: usize,
    /// Insertion-ordered keys (front = oldest).
    order: std::collections::VecDeque<FrameKey>,
    resident: HashMap<FrameKey, ()>,
    stats: CacheStats,
}

impl DecodedFrameCache {
    /// Create a cache holding at most `capacity` decoded tile frames.
    pub fn new(capacity: usize) -> DecodedFrameCache {
        DecodedFrameCache {
            capacity,
            order: std::collections::VecDeque::new(),
            resident: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether a decoded frame is resident (records hit/miss).
    pub fn lookup(&mut self, key: FrameKey) -> bool {
        if self.resident.contains_key(&key) {
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Whether a decoded frame is resident, without touching stats.
    pub fn contains(&self, key: FrameKey) -> bool {
        self.resident.contains_key(&key)
    }

    /// Insert a decoded frame, evicting the oldest entries if needed.
    /// No-op when capacity is 0.
    pub fn insert(&mut self, key: FrameKey) {
        if self.capacity == 0 || self.resident.contains_key(&key) {
            return;
        }
        while self.resident.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.resident.remove(&old);
                self.stats.evictions += 1;
            } else {
                break;
            }
        }
        self.order.push_back(key);
        self.resident.insert(key, ());
    }

    /// Drop all frames older than `frame` (already displayed), returning
    /// how many entries were dropped.
    pub fn evict_before(&mut self, frame: u64) -> usize {
        let mut dropped = 0;
        while let Some(&front) = self.order.front() {
            if front.frame < frame {
                self.order.pop_front();
                self.resident.remove(&front);
                dropped += 1;
            } else {
                break;
            }
        }
        dropped
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of resident frames.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(frame: u64, tile: u16) -> FrameKey {
        FrameKey {
            frame,
            tile: TileId(tile),
        }
    }

    #[test]
    fn lookup_tracks_hits_and_misses() {
        let mut c = DecodedFrameCache::new(4);
        assert!(!c.lookup(key(0, 0)));
        c.insert(key(0, 0));
        assert!(c.lookup(key(0, 0)));
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.hit_rate(), 0.5);
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = DecodedFrameCache::new(0);
        c.insert(key(0, 0));
        assert!(!c.lookup(key(0, 0)));
        assert!(c.is_empty());
    }

    #[test]
    fn eviction_is_fifo() {
        let mut c = DecodedFrameCache::new(2);
        c.insert(key(0, 0));
        c.insert(key(0, 1));
        c.insert(key(0, 2)); // evicts (0,0)
        assert!(!c.contains(key(0, 0)));
        assert!(c.contains(key(0, 1)));
        assert!(c.contains(key(0, 2)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut c = DecodedFrameCache::new(2);
        c.insert(key(1, 1));
        c.insert(key(1, 1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evict_before_drops_old_frames() {
        let mut c = DecodedFrameCache::new(10);
        c.insert(key(0, 0));
        c.insert(key(1, 0));
        c.insert(key(2, 0));
        assert_eq!(c.evict_before(2), 2);
        assert!(!c.contains(key(0, 0)));
        assert!(!c.contains(key(1, 0)));
        assert!(c.contains(key(2, 0)));
    }

    #[test]
    fn empty_stats_hit_rate_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
