//! The render loop: reproduces Figure 5.
//!
//! Three configurations, exactly the paper's bars:
//!
//! 1. *Render all tiles w/o optimization* — one decoder, no decoded-frame
//!    cache: every rendered frame synchronously re-decodes every tile.
//! 2. *Render all tiles with optimization* — N parallel decoders filling
//!    the decoded-frame cache; the render loop only draws.
//! 3. *Render only FoV tiles with optimization* — additionally draws (and
//!    decodes) only the tiles the viewer can see, steered by the HMP.

use crate::cache::{DecodedFrameCache, FrameKey};
use crate::device::{DeviceProfile, SourceVideo};
use crate::scheduler::DecoderPool;
use serde::{Deserialize, Serialize};
use sperke_geo::{TileGrid, TileId, Viewport, VisibilityCache};
use sperke_hmp::HeadTrace;
use sperke_sim::trace::{TraceEvent, TraceSink};
use sperke_sim::{SimDuration, SimTime};

/// The three Figure-5 configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RenderMode {
    /// Bar 1: all tiles, single synchronous decoder, no cache.
    UnoptimizedAll,
    /// Bar 2: all tiles, parallel decoders + decoded-frame cache.
    OptimizedAll,
    /// Bar 3: FoV tiles only, parallel decoders + cache.
    OptimizedFov,
}

impl RenderMode {
    /// All modes, in Figure 5 order.
    pub const ALL: [RenderMode; 3] = [
        RenderMode::UnoptimizedAll,
        RenderMode::OptimizedAll,
        RenderMode::OptimizedFov,
    ];

    /// The paper's bar label.
    pub fn label(self) -> &'static str {
        match self {
            RenderMode::UnoptimizedAll => "render all tiles w/o optimization",
            RenderMode::OptimizedAll => "render all tiles with optimization",
            RenderMode::OptimizedFov => "render only FoV tiles with optimization",
        }
    }
}

/// Pipeline configuration beyond the mode (for ablations, E12).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Decoded-frame cache capacity in tile frames (0 disables).
    pub cache_capacity: usize,
    /// How many source frames ahead the scheduler prefetches.
    pub prefetch_frames: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            cache_capacity: 64,
            prefetch_frames: 2,
        }
    }
}

/// Render-loop measurement result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RenderStats {
    /// Frames rendered.
    pub frames: u64,
    /// Wall time simulated.
    pub elapsed: SimDuration,
    /// Achieved frames per second.
    pub fps: f64,
    /// Decoded-frame cache hit rate.
    pub cache_hit_rate: f64,
    /// Mean decoder utilization.
    pub decoder_utilization: f64,
    /// Total time the render loop stalled waiting for decoders.
    pub decode_stall: SimDuration,
}

/// Simulate the render loop for `duration` of wall time.
pub fn simulate_render(
    device: &DeviceProfile,
    video: SourceVideo,
    grid: &TileGrid,
    trace: &HeadTrace,
    mode: RenderMode,
    config: &PipelineConfig,
    duration: SimDuration,
) -> RenderStats {
    simulate_render_traced(
        device,
        video,
        grid,
        trace,
        mode,
        config,
        duration,
        &TraceSink::disabled(),
    )
}

/// Like [`simulate_render`], additionally emitting decode-scheduler and
/// cache events ([`TraceEvent::DecodeAdmitted`], [`TraceEvent::CacheHit`],
/// [`TraceEvent::CacheEvicted`]) into `sink` at
/// [`TraceLevel::Verbose`](sperke_sim::trace::TraceLevel::Verbose).
#[allow(clippy::too_many_arguments)]
pub fn simulate_render_traced(
    device: &DeviceProfile,
    video: SourceVideo,
    grid: &TileGrid,
    trace: &HeadTrace,
    mode: RenderMode,
    config: &PipelineConfig,
    duration: SimDuration,
    sink: &TraceSink,
) -> RenderStats {
    let (decoders, cache_capacity) = match mode {
        RenderMode::UnoptimizedAll => (1, 0),
        RenderMode::OptimizedAll | RenderMode::OptimizedFov => {
            (device.hw_decoders, config.cache_capacity)
        }
    };
    let mut pool = DecoderPool::new(decoders);
    let mut cache = DecodedFrameCache::new(cache_capacity);
    // The render and prefetch passes query the same orientation every
    // frame, so the visibility memo hits on the second query onward.
    let vis = VisibilityCache::default();
    let decode_time = device.decode_time(video.tile_mp(grid.tile_count()));
    let frame_period = SimDuration::from_secs_f64(1.0 / video.fps);

    let mut now = SimTime::ZERO;
    let mut frames = 0u64;
    let mut decode_stall = SimDuration::ZERO;
    let mut prefetched_through: i64 = -1;
    // When each submitted decode actually lands: cache residency alone
    // is not enough — a prefetched frame is unusable until its decoder
    // finishes.
    let mut decoded_at: std::collections::HashMap<FrameKey, SimTime> =
        std::collections::HashMap::new();

    let end = SimTime::ZERO + duration;
    while now < end {
        let source_frame = now.as_nanos() / frame_period.as_nanos();
        let orientation = trace.at(now);
        let needed: Vec<TileId> = match mode {
            RenderMode::UnoptimizedAll | RenderMode::OptimizedAll => grid.tiles().collect(),
            RenderMode::OptimizedFov => vis.visible_tile_set(&Viewport::headset(orientation), grid),
        };

        // Decode whatever the current frame still misses; even cached
        // (prefetched) tiles gate on their decode completion time.
        let mut ready_at = now;
        for &tile in &needed {
            let key = FrameKey {
                frame: source_frame,
                tile,
            };
            if !cache.lookup(key) {
                let completion = pool.submit(key, now, decode_time);
                cache.insert(key);
                decoded_at.insert(key, completion.finished);
                ready_at = ready_at.max(completion.finished);
                if sink.is_enabled() {
                    sink.emit(TraceEvent::DecodeAdmitted {
                        at: now,
                        frame: key.frame,
                        tile: key.tile.0,
                        decoder: completion.decoder as u32,
                    });
                }
            } else {
                if sink.is_enabled() {
                    sink.emit(TraceEvent::CacheHit {
                        at: now,
                        frame: key.frame,
                        tile: key.tile.0,
                    });
                }
                if let Some(&done) = decoded_at.get(&key) {
                    ready_at = ready_at.max(done);
                }
            }
        }
        if ready_at > now {
            decode_stall += ready_at - now;
        }

        // Prefetch upcoming source frames so decoders stay warm
        // (the decoding scheduler's "playback time and HMP" policy).
        if cache_capacity > 0 {
            let horizon = source_frame + config.prefetch_frames;
            while prefetched_through < horizon as i64 {
                let f = (prefetched_through + 1) as u64;
                // HMP steer: in FoV mode, prefetch only tiles plausibly
                // visible soon (current visible set; the margin comes
                // from re-checks every rendered frame).
                let prefetch_tiles: Vec<TileId> = match mode {
                    RenderMode::OptimizedFov => {
                        vis.visible_tile_set(&Viewport::headset(orientation), grid)
                    }
                    _ => grid.tiles().collect(),
                };
                for tile in prefetch_tiles {
                    let key = FrameKey { frame: f, tile };
                    if !cache.contains(key) {
                        let completion = pool.submit(key, now, decode_time);
                        cache.insert(key);
                        decoded_at.insert(key, completion.finished);
                        if sink.is_enabled() {
                            sink.emit(TraceEvent::DecodeAdmitted {
                                at: now,
                                frame: key.frame,
                                tile: key.tile.0,
                                decoder: completion.decoder as u32,
                            });
                        }
                    }
                }
                prefetched_through += 1;
            }
        }

        // Draw.
        let draw_done = ready_at + device.render_time(needed.len());
        let mut next = draw_done;
        if let Some(cap) = device.vsync_cap {
            next = next.max(now + SimDuration::from_secs_f64(1.0 / cap));
        }
        now = next;
        frames += 1;
        let evicted = cache.evict_before(source_frame.saturating_sub(1));
        if evicted > 0 && sink.is_enabled() {
            sink.emit(TraceEvent::CacheEvicted {
                at: now,
                frame: source_frame.saturating_sub(1),
                count: evicted as u32,
            });
        }
        decoded_at.retain(|k, _| k.frame + 1 >= source_frame);
    }

    let elapsed = now.saturating_since(SimTime::ZERO);
    if sink.is_enabled() {
        let stats = cache.stats();
        let vstats = vis.stats();
        sink.metrics(|m| {
            m.counter("pipeline.frames").add(frames);
            m.counter("pipeline.cache_hits").add(stats.hits);
            m.counter("pipeline.cache_misses").add(stats.misses);
            m.counter("vis_cache_hit").add(vstats.hits);
            m.counter("vis_cache_miss").add(vstats.misses);
            m.histogram("pipeline.fps")
                .record(frames as f64 / elapsed.as_secs_f64());
        });
    }
    RenderStats {
        frames,
        elapsed,
        fps: frames as f64 / elapsed.as_secs_f64(),
        cache_hit_rate: cache.stats().hit_rate(),
        decoder_utilization: pool.utilization(elapsed),
        decode_stall,
    }
}

/// Run all three Figure-5 configurations.
pub fn figure5(
    device: &DeviceProfile,
    video: SourceVideo,
    grid: &TileGrid,
    trace: &HeadTrace,
    duration: SimDuration,
) -> [(RenderMode, RenderStats); 3] {
    let config = PipelineConfig::default();
    RenderMode::ALL.map(|mode| {
        (
            mode,
            simulate_render(device, video, grid, trace, mode, &config, duration),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sperke_geo::Orientation;

    fn still_trace() -> HeadTrace {
        HeadTrace::from_fn(SimDuration::from_secs(20), |_| Orientation::FRONT)
    }

    fn slow_pan_trace() -> HeadTrace {
        HeadTrace::from_fn(SimDuration::from_secs(20), |t| {
            Orientation::new(0.3 * t.as_secs_f64(), 0.0, 0.0)
        })
    }

    fn fig5_setup() -> (DeviceProfile, SourceVideo, TileGrid) {
        (
            DeviceProfile::galaxy_s7(),
            SourceVideo::two_k(),
            TileGrid::sperke_prototype(),
        )
    }

    #[test]
    fn figure5_shape_holds() {
        let (device, video, grid) = fig5_setup();
        let trace = slow_pan_trace();
        let results = figure5(&device, video, &grid, &trace, SimDuration::from_secs(10));
        let fps: Vec<f64> = results.iter().map(|(_, s)| s.fps).collect();
        // Paper: 11 → 53 → 120. Require the shape and the ballpark.
        assert!(
            (8.0..16.0).contains(&fps[0]),
            "unoptimized ≈ 11 FPS, got {:.1}",
            fps[0]
        );
        assert!(
            (40.0..70.0).contains(&fps[1]),
            "optimized-all ≈ 53 FPS, got {:.1}",
            fps[1]
        );
        assert!(
            (85.0..180.0).contains(&fps[2]),
            "FoV-only ≈ 120 FPS, got {:.1}",
            fps[2]
        );
        assert!(fps[0] * 3.0 < fps[1], "optimization must be a big jump");
        assert!(fps[1] * 1.5 < fps[2], "FoV-only must be another big jump");
    }

    #[test]
    fn cache_hit_rate_high_when_optimized() {
        let (device, video, grid) = fig5_setup();
        let trace = still_trace();
        let s = simulate_render(
            &device,
            video,
            &grid,
            &trace,
            RenderMode::OptimizedAll,
            &PipelineConfig::default(),
            SimDuration::from_secs(5),
        );
        // Rendering at ~54 fps over 30 fps source: most lookups hit.
        assert!(s.cache_hit_rate > 0.5, "hit rate {}", s.cache_hit_rate);
        assert!(s.decode_stall.as_secs_f64() < 0.5);
    }

    #[test]
    fn unoptimized_mode_never_hits_cache() {
        let (device, video, grid) = fig5_setup();
        let trace = still_trace();
        let s = simulate_render(
            &device,
            video,
            &grid,
            &trace,
            RenderMode::UnoptimizedAll,
            &PipelineConfig::default(),
            SimDuration::from_secs(3),
        );
        assert_eq!(s.cache_hit_rate, 0.0);
    }

    #[test]
    fn more_decoders_help_until_render_bound() {
        let (device, video, grid) = fig5_setup();
        let trace = still_trace();
        let fps_with = |n: usize| {
            simulate_render(
                &device.clone().with_decoders(n),
                video,
                &grid,
                &trace,
                RenderMode::OptimizedAll,
                &PipelineConfig::default(),
                SimDuration::from_secs(5),
            )
            .fps
        };
        let one = fps_with(1);
        let four = fps_with(4);
        let eight = fps_with(8);
        let sixteen = fps_with(16);
        assert!(
            four > one,
            "decoder parallelism helps: {one:.1} -> {four:.1}"
        );
        assert!(eight >= four * 0.99);
        // Past saturation, extra decoders don't help much.
        assert!(sixteen < eight * 1.2, "{eight:.1} -> {sixteen:.1}");
    }

    #[test]
    fn vsync_caps_fps() {
        let (mut device, video, grid) = fig5_setup();
        device.vsync_cap = Some(60.0);
        let trace = still_trace();
        let s = simulate_render(
            &device,
            video,
            &grid,
            &trace,
            RenderMode::OptimizedFov,
            &PipelineConfig::default(),
            SimDuration::from_secs(5),
        );
        assert!(s.fps <= 60.5, "capped at 60, got {:.1}", s.fps);
    }

    #[test]
    fn four_k_is_slower_than_two_k() {
        let (device, _, grid) = fig5_setup();
        let trace = still_trace();
        let run = |v: SourceVideo| {
            simulate_render(
                &device,
                v,
                &grid,
                &trace,
                RenderMode::UnoptimizedAll,
                &PipelineConfig::default(),
                SimDuration::from_secs(3),
            )
            .fps
        };
        assert!(run(SourceVideo::four_k()) < run(SourceVideo::two_k()));
    }

    #[test]
    fn fov_shift_reuses_cached_tiles() {
        // The §3.5 claim: with the decoded-frame cache, an HMP miss only
        // costs the "delta" tiles. A panning viewer in FoV mode should
        // still see a high cache hit rate.
        let (device, video, grid) = fig5_setup();
        let trace = slow_pan_trace();
        let s = simulate_render(
            &device,
            video,
            &grid,
            &trace,
            RenderMode::OptimizedFov,
            &PipelineConfig::default(),
            SimDuration::from_secs(10),
        );
        assert!(s.cache_hit_rate > 0.6, "hit rate {}", s.cache_hit_rate);
    }

    #[test]
    fn traced_render_captures_pipeline_events() {
        use sperke_sim::trace::{TraceLevel, TraceSink};
        let (device, video, grid) = fig5_setup();
        let trace = still_trace();
        let sink = TraceSink::with_level(TraceLevel::Verbose);
        let traced = simulate_render_traced(
            &device,
            video,
            &grid,
            &trace,
            RenderMode::OptimizedAll,
            &PipelineConfig::default(),
            SimDuration::from_secs(2),
            &sink,
        );
        let untraced = simulate_render(
            &device,
            video,
            &grid,
            &trace,
            RenderMode::OptimizedAll,
            &PipelineConfig::default(),
            SimDuration::from_secs(2),
        );
        // Tracing must not perturb the simulation.
        assert_eq!(traced, untraced);
        let snap = sink.snapshot();
        let admits = snap
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::DecodeAdmitted { .. }))
            .count();
        let hits = snap
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::CacheHit { .. }))
            .count();
        let evictions = snap
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::CacheEvicted { .. }))
            .count();
        assert!(admits > 0, "decode admits recorded");
        assert!(hits > 0, "cache hits recorded");
        assert!(evictions > 0, "cache evictions recorded");
        assert_eq!(
            snap.metrics().counter_value("pipeline.frames"),
            Some(traced.frames)
        );
    }

    #[test]
    fn stats_are_internally_consistent() {
        let (device, video, grid) = fig5_setup();
        let trace = still_trace();
        let s = simulate_render(
            &device,
            video,
            &grid,
            &trace,
            RenderMode::OptimizedAll,
            &PipelineConfig::default(),
            SimDuration::from_secs(4),
        );
        assert!(s.frames > 0);
        assert!(s.elapsed >= SimDuration::from_secs(4));
        assert!((s.fps - s.frames as f64 / s.elapsed.as_secs_f64()).abs() < 1e-9);
        assert!((0.0..=1.0).contains(&s.decoder_utilization));
    }
}
