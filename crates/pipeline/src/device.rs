//! Device cost profiles for the client pipeline (§3.5).
//!
//! The paper's prototype runs on Samsung Galaxy phones: "8 H.264
//! decoders for Samsung Galaxy S5 and 16 for Samsung Galaxy S7" (the
//! measured Figure 5 numbers use 8 parallel decoders on an SGS7).
//! Costs below are calibrated so the simulated pipeline reproduces
//! Figure 5's 11 / 53 / 120 FPS shape on a 2K, 2×4-tile video.

use serde::{Deserialize, Serialize};
use sperke_sim::SimDuration;

/// Hardware cost model of a playback device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Display name.
    pub name: String,
    /// Number of hardware decoder instances usable in parallel.
    pub hw_decoders: usize,
    /// Per-tile-frame decode cost: fixed part.
    pub decode_base_ms: f64,
    /// Per-tile-frame decode cost: per megapixel of the tile.
    pub decode_ms_per_mp: f64,
    /// GPU draw cost per tile per rendered frame (bind + draw + sample).
    pub draw_ms_per_tile: f64,
    /// Fixed per-frame projection/display overhead.
    pub projection_ms: f64,
    /// Display refresh cap in frames/second, if the compositor enforces
    /// one (`None` = uncapped measurement, as in the paper's Figure 5).
    pub vsync_cap: Option<f64>,
}

impl DeviceProfile {
    /// Samsung Galaxy S7 (the Figure 5 device), 8 decoders engaged.
    pub fn galaxy_s7() -> DeviceProfile {
        DeviceProfile {
            name: "galaxy-s7".into(),
            hw_decoders: 8,
            decode_base_ms: 1.2,
            decode_ms_per_mp: 17.0,
            draw_ms_per_tile: 2.2,
            projection_ms: 1.0,
            vsync_cap: None,
        }
    }

    /// Samsung Galaxy S5: fewer decoders, slower GPU.
    pub fn galaxy_s5() -> DeviceProfile {
        DeviceProfile {
            name: "galaxy-s5".into(),
            hw_decoders: 8,
            decode_base_ms: 2.0,
            decode_ms_per_mp: 26.0,
            draw_ms_per_tile: 3.4,
            projection_ms: 1.6,
            vsync_cap: None,
        }
    }

    /// Decode time of one tile frame of `tile_mp` megapixels.
    pub fn decode_time(&self, tile_mp: f64) -> SimDuration {
        SimDuration::from_secs_f64((self.decode_base_ms + self.decode_ms_per_mp * tile_mp) / 1000.0)
    }

    /// Draw time for `tiles` tiles plus projection.
    pub fn render_time(&self, tiles: usize) -> SimDuration {
        SimDuration::from_secs_f64(
            (self.draw_ms_per_tile * tiles as f64 + self.projection_ms) / 1000.0,
        )
    }

    /// Restrict to `n` decoders (ablation E12).
    pub fn with_decoders(mut self, n: usize) -> DeviceProfile {
        assert!(n > 0, "need at least one decoder");
        self.hw_decoders = n;
        self
    }
}

/// The source video the pipeline decodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SourceVideo {
    /// Total panorama pixels, megapixels (2K ≈ 2560×1440 ≈ 3.7 MP).
    pub megapixels: f64,
    /// Source frame rate.
    pub fps: f64,
}

impl SourceVideo {
    /// The paper's 2K test clip at 30 fps.
    pub fn two_k() -> SourceVideo {
        SourceVideo {
            megapixels: 2560.0 * 1440.0 / 1e6,
            fps: 30.0,
        }
    }

    /// A 4K clip at 30 fps.
    pub fn four_k() -> SourceVideo {
        SourceVideo {
            megapixels: 3840.0 * 2160.0 / 1e6,
            fps: 30.0,
        }
    }

    /// Megapixels of one tile under an `n`-tile grid.
    pub fn tile_mp(&self, tiles: usize) -> f64 {
        assert!(tiles > 0);
        self.megapixels / tiles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_time_scales_with_resolution() {
        let d = DeviceProfile::galaxy_s7();
        let small = d.decode_time(0.1);
        let big = d.decode_time(1.0);
        assert!(big > small);
        // 2K/8 tiles ≈ 0.46 MP → ~9 ms.
        let t = d.decode_time(SourceVideo::two_k().tile_mp(8));
        assert!((t.as_secs_f64() * 1000.0 - 9.0).abs() < 1.0, "{t}");
    }

    #[test]
    fn render_time_scales_with_tiles() {
        let d = DeviceProfile::galaxy_s7();
        assert!(d.render_time(8) > d.render_time(3));
        // 8 tiles: 8*2.2 + 1.0 = 18.6 ms → ~54 fps.
        assert!((d.render_time(8).as_secs_f64() * 1000.0 - 18.6).abs() < 1e-9);
    }

    #[test]
    fn s5_slower_than_s7() {
        let mp = SourceVideo::two_k().tile_mp(8);
        assert!(
            DeviceProfile::galaxy_s5().decode_time(mp) > DeviceProfile::galaxy_s7().decode_time(mp)
        );
    }

    #[test]
    fn with_decoders_overrides() {
        let d = DeviceProfile::galaxy_s7().with_decoders(2);
        assert_eq!(d.hw_decoders, 2);
    }

    #[test]
    #[should_panic]
    fn zero_decoders_rejected() {
        DeviceProfile::galaxy_s7().with_decoders(0);
    }

    #[test]
    fn two_k_is_about_3_7_mp() {
        let v = SourceVideo::two_k();
        assert!((v.megapixels - 3.686).abs() < 0.01);
        assert!((v.tile_mp(8) - 0.4608).abs() < 0.001);
    }
}
