//! # sperke-live — live 360° broadcast (§3.4)
//!
//! Three pieces:
//!
//! * [`platform`] + [`broadcast`] — the pilot characterization study:
//!   per-platform pipeline models (Facebook / Periscope / YouTube,
//!   RTMP ingest, DASH-pull or RTMP-push distribution) whose simulated
//!   end-to-end latency reproduces **Table 2** across the five network
//!   conditions ([`broadcast::table2`]).
//! * [`fallback`] — the broadcaster-side *spatial fall-back* (§3.4.2):
//!   narrow the uploaded horizon toward the crowd's interest region
//!   instead of blindly lowering quality.
//! * [`crowd`] — crowd-sourced HMP: low-latency viewers' realtime gaze
//!   reports, causally aggregated, as a prediction prior for
//!   high-latency viewers.

#![warn(missing_docs)]

pub mod broadcast;
pub mod crowd;
pub mod fallback;
pub mod fov_live;
pub mod platform;

pub use broadcast::{
    run_live, run_live_with_upload_vra, table2, LiveRunConfig, LiveRunResult, NetworkCondition,
};
pub use crowd::{evaluate_crowd_hmp, viewer_reports, CrowdAggregator, CrowdHmpReport, LiveViewer};
pub use fallback::{
    plan_upload, viewer_experience, ExperienceReport, Horizon, InterestProfile, UploadPlan,
    UploadStrategy,
};
pub use fov_live::{run_fov_live, FovLiveConfig, FovLiveReport};
pub use platform::{DownloadProtocol, PlatformProfile};
