//! FoV-guided delivery for *live* viewers: the paper's end-state.
//!
//! §3.4.1 found that no commercial platform does FoV-guided live
//! delivery — "the broadcaster has always to upload full panoramic
//! views, which are then entirely delivered to the viewers". §3.4.2
//! proposes fixing the viewer side with crowd-sourced HMP: high-latency
//! viewers "experience challenging network conditions and thus can
//! benefit from FoV-guided streaming".
//!
//! [`run_fov_live`] plays one high-latency viewer through a live tiled
//! stream: at each chunk's fetch point it forecasts tiles (own motion +
//! the causally available crowd heatmap), selects chunks under the
//! downlink budget with the §3.2 stochastic optimizer, and scores what
//! the viewer actually saw against the FoV-agnostic baseline.

use crate::crowd::{CrowdAggregator, LiveViewer};
use serde::{Deserialize, Serialize};
use sperke_hmp::FusedForecaster;
use sperke_sim::{SimDuration, SimTime};
use sperke_video::{CellId, ChunkId, ChunkTime, Quality, Scheme, VideoModel};
use sperke_vra::select_stochastic;

/// Parameters of the live FoV-guided session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FovLiveConfig {
    /// How long before a chunk's display the fetch decision is made
    /// (the viewer's buffer depth drives this — deep buffers mean long
    /// HMP horizons, the crowd's opportunity).
    pub fetch_lead: SimDuration,
    /// Downlink budget, bits/second.
    pub downlink_bps: f64,
    /// Fraction of the budget spent per chunk (headroom for retries).
    pub budget_share: f64,
    /// Minimum forecast probability for a tile to be fetched.
    pub min_probability: f64,
}

impl Default for FovLiveConfig {
    fn default() -> Self {
        FovLiveConfig {
            fetch_lead: SimDuration::from_secs(4),
            downlink_bps: 8e6,
            budget_share: 0.9,
            min_probability: 0.05,
        }
    }
}

/// Result of one live FoV-guided session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FovLiveReport {
    /// Chunks played.
    pub chunks: u32,
    /// Bytes fetched by the FoV-guided viewer.
    pub bytes_fetched: u64,
    /// Bytes a FoV-agnostic delivery would need to give the whole
    /// panorama the viewport quality the guided viewer actually saw
    /// (the §2 savings accounting: same perceived quality, fewer bytes).
    pub bytes_agnostic: u64,
    /// 1 − guided/agnostic at matched viewport quality.
    pub savings: f64,
    /// Mean fraction of the viewport with no fetched tile.
    pub blank_fraction: f64,
    /// Mean utility over the displayed viewport.
    pub mean_viewport_utility: f64,
}

/// Play `viewer` through a live tiled stream of `video`.
///
/// `crowd` supplies the §3.4.2 realtime prior (pass an empty aggregator
/// for the motion-only ablation).
pub fn run_fov_live(
    video: &VideoModel,
    viewer: &LiveViewer,
    crowd: &CrowdAggregator,
    config: &FovLiveConfig,
) -> FovLiveReport {
    let cd = video.chunk_duration();
    let chunks = video.chunk_count();
    let budget = (config.downlink_bps * config.budget_share * cd.as_secs_f64() / 8.0) as u64;

    let mut bytes_fetched = 0u64;
    let mut blank_acc = 0.0;
    let mut util_acc = 0.0;
    let mut evaluated = 0u32;
    // Display-point visibility memo; the gaze sequence revisits
    // orientations, and a hit is bit-identical to recomputation.
    let vis = sperke_geo::VisibilityCache::default();

    for c in 1..chunks {
        let t = ChunkTime(c);
        let video_time = SimTime::ZERO + cd * c as u64;
        let display_wall = video_time + viewer.latency;
        let decide_wall = SimTime::from_nanos(
            display_wall
                .as_nanos()
                .saturating_sub(config.fetch_lead.as_nanos()),
        );
        // The viewer's own gaze history stops at what they are watching
        // at decide time.
        let own_video_now = SimTime::from_nanos(
            decide_wall
                .as_nanos()
                .saturating_sub(viewer.latency.as_nanos()),
        );
        let history = viewer.trace.history(own_video_now, 50);
        let heatmap = crowd.heatmap_at(decide_wall, chunks);
        let forecaster = FusedForecaster::motion_only().with_heatmap(heatmap);
        let forecast = forecaster.forecast(video.grid(), &history, own_video_now, video_time, t);

        let choices = select_stochastic(
            video,
            &forecast,
            t,
            budget,
            Scheme::Avc,
            config.min_probability,
        );
        let mut buffered: std::collections::HashMap<CellId, Quality> =
            std::collections::HashMap::new();
        for ch in &choices {
            let id = ChunkId::new(ch.quality, ch.tile, t);
            bytes_fetched += video.avc_bytes(id);
            buffered.insert(CellId::new(ch.tile, t), ch.quality);
        }
        // Display: viewport at the chunk's midpoint.
        let gaze = viewer.trace.at(video_time + cd / 2);
        let visible = vis.visible_tiles(&sperke_geo::Viewport::headset(gaze), video.grid(), 16);
        let mut blank = 0.0;
        let mut util = 0.0;
        for &(tile, coverage) in visible.iter() {
            match buffered.get(&CellId::new(tile, t)) {
                Some(&q) => util += coverage * video.ladder().utility(q),
                None => blank += coverage,
            }
        }
        blank_acc += blank;
        util_acc += util;
        evaluated += 1;
    }

    let n = evaluated.max(1) as f64;
    let mean_utility = util_acc / n;
    // Matched-quality baseline: the cheapest ladder level whose utility
    // covers what the guided viewer saw, delivered panorama-wide.
    let matched_q = video
        .ladder()
        .qualities()
        .find(|&q| video.ladder().utility(q) >= mean_utility)
        .unwrap_or_else(|| video.ladder().top());
    let bytes_agnostic: u64 = (1..chunks)
        .map(|c| video.panorama_bytes(matched_q, ChunkTime(c), Scheme::Avc))
        .sum();
    FovLiveReport {
        chunks: evaluated,
        bytes_fetched,
        bytes_agnostic,
        savings: if bytes_agnostic > 0 {
            1.0 - bytes_fetched as f64 / bytes_agnostic as f64
        } else {
            0.0
        },
        blank_fraction: blank_acc / n,
        mean_viewport_utility: mean_utility,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sperke_geo::TileGrid;
    use sperke_hmp::{generate_ensemble, AttentionModel};
    use sperke_video::VideoModelBuilder;

    fn setup(seed: u64) -> (VideoModel, Vec<LiveViewer>, LiveViewer) {
        let video = VideoModelBuilder::new(seed)
            .duration(SimDuration::from_secs(30))
            .grid(TileGrid::new(4, 6))
            .build();
        let att = AttentionModel::sports(seed);
        let traces = generate_ensemble(&att, 9, SimDuration::from_secs(35), seed);
        let mut it = traces.into_iter();
        let lows: Vec<LiveViewer> = (0..8)
            .map(|i| LiveViewer {
                trace: it.next().expect("traces"),
                latency: SimDuration::from_secs(8 + i % 3),
            })
            .collect();
        let high = LiveViewer {
            trace: it.next().expect("one more"),
            latency: SimDuration::from_secs(30),
        };
        (video, lows, high)
    }

    fn crowd_for(video: &VideoModel, lows: &[LiveViewer]) -> CrowdAggregator {
        let mut agg = CrowdAggregator::new(*video.grid(), video.chunk_duration());
        for v in lows {
            agg.ingest(v, video.chunk_count());
        }
        agg
    }

    #[test]
    fn guided_live_saves_bandwidth() {
        let (video, lows, high) = setup(5);
        let crowd = crowd_for(&video, &lows);
        let r = run_fov_live(&video, &high, &crowd, &FovLiveConfig::default());
        assert!(
            r.savings > 0.2,
            "FoV-guided live should save vs full panorama, got {:.0}%",
            r.savings * 100.0
        );
        assert!(r.blank_fraction < 0.35, "blank {:.2}", r.blank_fraction);
    }

    #[test]
    fn crowd_prior_reduces_blanks_at_long_leads() {
        // Averaged over seeds: the crowd prior must help the deep-buffer
        // viewer somewhere, and never catastrophically hurt.
        let mut with_acc = 0.0;
        let mut without_acc = 0.0;
        for seed in [5u64, 11, 23] {
            let (video, lows, high) = setup(seed);
            let crowd = crowd_for(&video, &lows);
            let empty = CrowdAggregator::new(*video.grid(), video.chunk_duration());
            let cfg = FovLiveConfig::default();
            with_acc += run_fov_live(&video, &high, &crowd, &cfg).blank_fraction;
            without_acc += run_fov_live(&video, &high, &empty, &cfg).blank_fraction;
        }
        assert!(
            with_acc <= without_acc + 0.03,
            "crowd prior must not raise blanks: {with_acc:.3} vs {without_acc:.3}"
        );
    }

    #[test]
    fn bigger_budget_improves_quality() {
        let (video, lows, high) = setup(7);
        let crowd = crowd_for(&video, &lows);
        let lean = run_fov_live(
            &video,
            &high,
            &crowd,
            &FovLiveConfig {
                downlink_bps: 4e6,
                ..Default::default()
            },
        );
        let rich = run_fov_live(
            &video,
            &high,
            &crowd,
            &FovLiveConfig {
                downlink_bps: 20e6,
                ..Default::default()
            },
        );
        assert!(rich.mean_viewport_utility > lean.mean_viewport_utility);
        assert!(rich.bytes_fetched > lean.bytes_fetched);
    }

    #[test]
    fn report_is_deterministic() {
        let (video, lows, high) = setup(9);
        let crowd = crowd_for(&video, &lows);
        let cfg = FovLiveConfig::default();
        assert_eq!(
            run_fov_live(&video, &high, &crowd, &cfg),
            run_fov_live(&video, &high, &crowd, &cfg)
        );
    }
}
