//! Crowd-sourced HMP for live 360° viewers (§3.4.2).
//!
//! "When many viewers are present, due to the heterogeneity of their
//! network quality ... the E2E latency across users will likely exhibit
//! high variance. We can therefore use the realtime head movement
//! statistics of low-latency users ... to help HMP for high-latency
//! users who experience challenging network conditions and thus can
//! benefit from FoV-guided streaming."
//!
//! The mechanic: a viewer with latency `L_lo` watches video time
//! `t - L_lo` at wall time `t`. Their gaze at video time `v` reaches the
//! server at wall `v + L_lo (+ report delay)`. A viewer with latency
//! `L_hi > L_lo` needs tiles for video time `v` shortly before wall
//! `v + L_hi` — by which point the crowd's gaze at `v` is long known.

use serde::{Deserialize, Serialize};
use sperke_geo::{TileGrid, TileId, Viewport, VisibilityCache, VisibilityScratch};
use sperke_hmp::{FusedForecaster, HeadTrace, Heatmap};
use sperke_sim::{SimDuration, SimTime};
use sperke_video::ChunkTime;

/// A live viewer in the population.
#[derive(Debug, Clone)]
pub struct LiveViewer {
    /// Their head-movement trace (indexed by *video* time).
    pub trace: HeadTrace,
    /// Their E2E latency (video time v displays at wall v + latency).
    pub latency: SimDuration,
}

/// The server-side realtime gaze aggregator.
///
/// Collects (video-time, visible tiles) reports with their wall-clock
/// availability, and answers heatmap queries *causally*: a query at wall
/// time `w` only sees reports that arrived by `w`.
#[derive(Debug, Clone)]
pub struct CrowdAggregator {
    grid: TileGrid,
    chunk_duration: SimDuration,
    /// `(available_at_wall, chunk, tiles)` reports.
    reports: Vec<(SimTime, ChunkTime, Vec<TileId>)>,
    /// Extra delay for a gaze report to reach the server.
    pub report_delay: SimDuration,
    /// Memoized visibility for ingest (many viewers share gazes).
    vis: VisibilityCache,
}

impl CrowdAggregator {
    /// Create an aggregator for the given tiling and chunking.
    pub fn new(grid: TileGrid, chunk_duration: SimDuration) -> CrowdAggregator {
        CrowdAggregator {
            grid,
            chunk_duration,
            reports: Vec::new(),
            report_delay: SimDuration::from_millis(200),
            vis: VisibilityCache::default(),
        }
    }

    /// Ingest one viewer's gaze stream for chunks `0..chunks`.
    pub fn ingest(&mut self, viewer: &LiveViewer, chunks: u32) {
        for c in 0..chunks {
            let video_time = SimTime::ZERO + self.chunk_duration * c as u64;
            // The viewer watches chunk c at wall video_time + latency;
            // their gaze report reaches the server report_delay later.
            let wall = video_time + viewer.latency + self.report_delay;
            let gaze = viewer.trace.at(video_time + self.chunk_duration / 2);
            let tiles = self
                .vis
                .visible_tile_set(&Viewport::headset(gaze), &self.grid);
            self.reports.push((wall, ChunkTime(c), tiles));
        }
    }

    /// Append reports precomputed by [`viewer_reports`]. Appending each
    /// viewer's reports in ingest order leaves the aggregator in exactly
    /// the state repeated [`CrowdAggregator::ingest`] calls would — the
    /// report list is identical entry for entry.
    pub fn ingest_reports(&mut self, reports: Vec<(SimTime, ChunkTime, Vec<TileId>)>) {
        self.reports.extend(reports);
    }

    /// Append precomputed reports with every wall availability shifted
    /// `delay` later — a remote viewer whose gaze stream crosses an
    /// inter-edge sync link before it reaches this aggregator. Because a
    /// report's wall time is linear in the viewer's latency, shifting by
    /// `delay` is exactly equivalent to re-ingesting the viewer with
    /// `latency + delay`; sharing one [`viewer_reports`] computation
    /// across edges therefore stays bit-exact.
    pub fn ingest_reports_delayed(
        &mut self,
        reports: &[(SimTime, ChunkTime, Vec<TileId>)],
        delay: SimDuration,
    ) {
        self.reports.extend(
            reports
                .iter()
                .map(|(wall, chunk, tiles)| (*wall + delay, *chunk, tiles.clone())),
        );
    }

    /// Build the heatmap visible to the server at wall time `now`,
    /// covering `chunks` chunk times.
    pub fn heatmap_at(&self, now: SimTime, chunks: u32) -> Heatmap {
        let mut map = Heatmap::empty(self.grid, self.chunk_duration, chunks);
        for (wall, chunk, tiles) in &self.reports {
            if *wall <= now && chunk.0 < chunks {
                map.record(*chunk, tiles);
            }
        }
        map
    }

    /// Number of ingested reports.
    pub fn report_count(&self) -> usize {
        self.reports.len()
    }

    /// The `k` tiles the crowd most watched for chunk `chunk`, judged
    /// only from reports causally available at wall time `now` (best
    /// first, ties by tile id). Empty when no report for the chunk has
    /// arrived yet — an edge prefetcher then has nothing to act on.
    pub fn predicted_tiles(&self, now: SimTime, chunk: ChunkTime, k: usize) -> Vec<TileId> {
        let map = self.heatmap_at(now, chunk.0 + 1);
        if map.viewer_count(chunk) == 0 {
            return Vec::new();
        }
        map.top_k(chunk, k)
    }
}

/// The gaze reports [`CrowdAggregator::ingest`] would append for one
/// viewer — `(available_at_wall, chunk, visible tiles)` for each chunk
/// in `0..chunks` — computed without touching an aggregator. Pure in
/// its arguments, so a batched engine can compute every viewer's
/// reports on worker threads and append them in canonical order with
/// [`CrowdAggregator::ingest_reports`].
pub fn viewer_reports(
    grid: &TileGrid,
    chunk_duration: SimDuration,
    report_delay: SimDuration,
    viewer: &LiveViewer,
    chunks: u32,
) -> Vec<(SimTime, ChunkTime, Vec<TileId>)> {
    // One scratch (ray-hit counts + boundary classifier) serves every
    // chunk; `visible_tile_set_into` returns the identical tile set to
    // `visible_tile_set` without sorting or coverage fractions.
    let mut scratch = VisibilityScratch::new();
    (0..chunks)
        .map(|c| {
            let video_time = SimTime::ZERO + chunk_duration * c as u64;
            let wall = video_time + viewer.latency + report_delay;
            let gaze = viewer.trace.at(video_time + chunk_duration / 2);
            let mut tiles = Vec::new();
            Viewport::headset(gaze).visible_tile_set_into(grid, &mut scratch, &mut tiles);
            (wall, ChunkTime(c), tiles)
        })
        .collect()
}

/// Accuracy report for one prediction policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrowdHmpReport {
    /// Fraction of chunks where the top-k forecast tiles contained the
    /// high-latency viewer's actual gaze tile.
    pub topk_hit_rate: f64,
    /// Mean crowd reports available per predicted chunk.
    pub mean_reports_available: f64,
    /// Chunks evaluated.
    pub evaluations: usize,
}

/// Evaluate crowd-assisted HMP for a high-latency viewer.
///
/// For each chunk `c`, the prediction is made at the moment the
/// high-latency viewer's player must fetch `c` (its display wall time
/// minus `fetch_lead`), using gaze history up to then plus — when
/// `use_crowd` — the causally available crowd heatmap.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_crowd_hmp(
    grid: &TileGrid,
    chunk_duration: SimDuration,
    crowd: &CrowdAggregator,
    viewer: &LiveViewer,
    chunks: u32,
    fetch_lead: SimDuration,
    k: usize,
    use_crowd: bool,
) -> CrowdHmpReport {
    let mut hits = 0usize;
    let mut total = 0usize;
    let mut reports_avail = 0.0;
    for c in 1..chunks {
        let video_time = SimTime::ZERO + chunk_duration * c as u64;
        let display_wall = video_time + viewer.latency;
        let decide_wall = SimTime::from_nanos(
            display_wall
                .as_nanos()
                .saturating_sub(fetch_lead.as_nanos()),
        );
        // The viewer's own gaze history: what they were *watching* at
        // decide time, i.e. video time decide_wall - latency.
        let own_video_now = SimTime::from_nanos(
            decide_wall
                .as_nanos()
                .saturating_sub(viewer.latency.as_nanos()),
        );
        let history = viewer.trace.history(own_video_now, 50);

        let forecaster = if use_crowd {
            let map = crowd.heatmap_at(decide_wall, chunks);
            reports_avail += map.viewer_count(ChunkTime(c)) as f64;
            FusedForecaster::motion_only().with_heatmap(map)
        } else {
            FusedForecaster::motion_only()
        };
        let forecast = forecaster.forecast(grid, &history, own_video_now, video_time, ChunkTime(c));

        let actual = viewer.trace.at(video_time + chunk_duration / 2);
        let actual_tile = grid.tile_of_direction(actual.direction());
        if forecast.top_k(k).contains(&actual_tile) {
            hits += 1;
        }
        total += 1;
    }
    CrowdHmpReport {
        topk_hit_rate: if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        },
        mean_reports_available: if total == 0 {
            0.0
        } else {
            reports_avail / total as f64
        },
        evaluations: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sperke_hmp::{generate_ensemble, AttentionModel};

    fn population(seed: u64) -> (Vec<LiveViewer>, LiveViewer) {
        // Everyone watches the same sports video (shared hotspots).
        let att = AttentionModel::sports(seed);
        let traces = generate_ensemble(&att, 9, SimDuration::from_secs(30), seed);
        let mut it = traces.into_iter();
        let lows: Vec<LiveViewer> = (0..8)
            .map(|i| LiveViewer {
                trace: it.next().expect("enough traces"),
                latency: SimDuration::from_secs(8 + i % 3),
            })
            .collect();
        let high = LiveViewer {
            trace: it.next().expect("one more"),
            latency: SimDuration::from_secs(30),
        };
        (lows, high)
    }

    #[test]
    fn aggregator_is_causal() {
        let grid = TileGrid::new(4, 6);
        let cd = SimDuration::from_secs(1);
        let mut agg = CrowdAggregator::new(grid, cd);
        let viewer = LiveViewer {
            trace: HeadTrace::from_fn(SimDuration::from_secs(10), |_| {
                sperke_geo::Orientation::FRONT
            }),
            latency: SimDuration::from_secs(5),
        };
        agg.ingest(&viewer, 10);
        // Chunk 6's gaze reaches the server at 6 + 5 + 0.2 = 11.2 s.
        let before = agg.heatmap_at(SimTime::from_secs(11), 10);
        let after = agg.heatmap_at(SimTime::from_secs(12), 10);
        assert_eq!(before.viewer_count(ChunkTime(6)), 0);
        assert_eq!(after.viewer_count(ChunkTime(6)), 1);
    }

    #[test]
    fn high_latency_viewer_sees_full_crowd_history() {
        let grid = TileGrid::new(4, 6);
        let cd = SimDuration::from_secs(1);
        let (lows, high) = population(5);
        let mut agg = CrowdAggregator::new(grid, cd);
        for v in &lows {
            agg.ingest(v, 25);
        }
        // When the high-latency viewer fetches chunk 20 (wall ≈ 49 s),
        // the crowd (latency ≤ 10 s) reported chunk 20 by wall ≈ 31 s.
        let decide = SimTime::ZERO + cd * 20 + high.latency - SimDuration::from_secs(1);
        let map = agg.heatmap_at(decide, 25);
        assert_eq!(map.viewer_count(ChunkTime(20)), lows.len() as u32);
    }

    #[test]
    fn crowd_prior_improves_high_latency_hmp() {
        // The §3.4.2 claim, end to end.
        let grid = TileGrid::new(4, 6);
        let cd = SimDuration::from_secs(1);
        let mut best_gain = f64::NEG_INFINITY;
        for seed in [5u64, 11, 23] {
            let (lows, high) = population(seed);
            let mut agg = CrowdAggregator::new(grid, cd);
            for v in &lows {
                agg.ingest(v, 28);
            }
            // The high-latency viewer must fetch well ahead (deep buffer):
            // pure motion HMP at a ~4 s horizon is weak.
            let lead = SimDuration::from_secs(4);
            let with = evaluate_crowd_hmp(&grid, cd, &agg, &high, 28, lead, 6, true);
            let without = evaluate_crowd_hmp(&grid, cd, &agg, &high, 28, lead, 6, false);
            best_gain = best_gain.max(with.topk_hit_rate - without.topk_hit_rate);
            assert!(
                with.mean_reports_available > 6.0,
                "crowd data must be available"
            );
        }
        assert!(
            best_gain > 0.0,
            "crowd prior should improve hit rate on at least one seed (gain {best_gain})"
        );
    }

    #[test]
    fn precomputed_reports_match_ingest_exactly() {
        let grid = TileGrid::new(4, 6);
        let cd = SimDuration::from_secs(1);
        let (lows, _) = population(13);
        let mut direct = CrowdAggregator::new(grid, cd);
        let mut batched = CrowdAggregator::new(grid, cd);
        for v in &lows {
            direct.ingest(v, 12);
            let reports = viewer_reports(&grid, cd, batched.report_delay, v, 12);
            batched.ingest_reports(reports);
        }
        assert_eq!(direct.reports, batched.reports);
    }

    #[test]
    fn delayed_ingest_equals_added_latency() {
        let grid = TileGrid::new(4, 6);
        let cd = SimDuration::from_secs(1);
        let (lows, _) = population(19);
        let delay = SimDuration::from_millis(150);
        let mut shifted = CrowdAggregator::new(grid, cd);
        let mut slower = CrowdAggregator::new(grid, cd);
        for v in &lows {
            let reports = viewer_reports(&grid, cd, shifted.report_delay, v, 12);
            shifted.ingest_reports_delayed(&reports, delay);
            slower.ingest(
                &LiveViewer {
                    trace: v.trace.clone(),
                    latency: v.latency + delay,
                },
                12,
            );
        }
        assert_eq!(shifted.reports, slower.reports);
    }

    #[test]
    fn report_counts() {
        let grid = TileGrid::new(2, 4);
        let mut agg = CrowdAggregator::new(grid, SimDuration::from_secs(1));
        let (lows, _) = population(7);
        for v in &lows {
            agg.ingest(v, 5);
        }
        assert_eq!(agg.report_count(), lows.len() * 5);
    }
}
