//! The live 360° broadcast pipeline and its E2E latency (Table 2).
//!
//! Broadcaster → (RTMP upload) → ingest server (re-encode, package) →
//! (DASH pull or RTMP push) → viewer. "E2E latency is the elapsed time
//! between when a real-world scene appears and its viewer-side playback
//! time. This latency consists of delays incurred at various components
//! including network transmission, video encoding, and buffering at the
//! three entities" (§3.4.1). The simulation reproduces each component
//! explicitly; Table 2's five network rows are `tc`-style caps on the
//! two access links.

use crate::platform::{DownloadProtocol, PlatformProfile};
use serde::{Deserialize, Serialize};
use sperke_net::{BandwidthEstimator, BandwidthTrace, PathModel, PathQueue, Reliability};
use sperke_sim::{stats, SimDuration, SimRng, SimTime};
use sperke_video::Quality;

/// One row of Table 2: caps on the upload / download links.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkCondition {
    /// Upload cap in bits/second (`None` = unconstrained high-speed WiFi).
    pub up_cap_bps: Option<f64>,
    /// Download cap in bits/second.
    pub down_cap_bps: Option<f64>,
}

impl NetworkCondition {
    /// The five rows of Table 2, with the paper's labels.
    pub fn table2_rows() -> Vec<(&'static str, &'static str, NetworkCondition)> {
        vec![
            (
                "No limit",
                "No limit",
                NetworkCondition {
                    up_cap_bps: None,
                    down_cap_bps: None,
                },
            ),
            (
                "2Mbps",
                "No limit",
                NetworkCondition {
                    up_cap_bps: Some(2e6),
                    down_cap_bps: None,
                },
            ),
            (
                "No limit",
                "2Mbps",
                NetworkCondition {
                    up_cap_bps: None,
                    down_cap_bps: Some(2e6),
                },
            ),
            (
                "0.5Mbps",
                "No limit",
                NetworkCondition {
                    up_cap_bps: Some(0.5e6),
                    down_cap_bps: None,
                },
            ),
            (
                "No limit",
                "0.5Mbps",
                NetworkCondition {
                    up_cap_bps: None,
                    down_cap_bps: Some(0.5e6),
                },
            ),
        ]
    }
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LiveRunConfig {
    /// How long the broadcast runs (the measurement window).
    pub duration: SimDuration,
    /// Uncapped link speed ("high-speed WiFi").
    pub base_link_bps: f64,
    /// Access-link RTT.
    pub rtt: SimDuration,
    /// Seed for the (minimal) randomness in the transport model.
    pub seed: u64,
}

impl Default for LiveRunConfig {
    fn default() -> Self {
        LiveRunConfig {
            duration: SimDuration::from_secs(90),
            base_link_bps: 80e6,
            rtt: SimDuration::from_millis(30),
            seed: 1,
        }
    }
}

/// Result of one broadcast run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiveRunResult {
    /// `(segment index, E2E latency seconds)` for delivered segments.
    pub segment_latencies: Vec<(u32, f64)>,
    /// Mean E2E latency, seconds.
    pub mean_latency_s: f64,
    /// Standard deviation of segment latencies.
    pub stddev_latency_s: f64,
    /// Segments the broadcaster skipped (send buffer full).
    pub upload_skips: u32,
    /// Segments the viewer skipped (fell too far behind the live edge).
    pub viewer_skips: u32,
    /// Number of viewer stall events.
    pub viewer_stalls: u32,
    /// Mean delivered quality level.
    pub mean_quality: f64,
}

/// How far behind the live edge a pushing player tolerates before it
/// jumps forward (RTMP players drop backlog; DASH players generally
/// stall instead).
const PUSH_MAX_LAG: SimDuration = SimDuration::from_secs(75);

/// Run one live broadcast over the given platform and network row.
pub fn run_live(
    platform: &PlatformProfile,
    condition: NetworkCondition,
    config: &LiveRunConfig,
) -> LiveRunResult {
    run_live_with_upload_vra(platform, condition, config, false)
}

/// Like [`run_live`], optionally enabling the §3.4.2 *upload VRA*: the
/// paper found "no rate adaptation is currently used during a live 360°
/// video upload" and proposes adding one. When enabled, the broadcaster
/// tracks its uplink goodput (harmonic mean of recent segments) and
/// scales each segment's encoded bitrate to fit, trading quality for
/// liveness instead of skipping.
pub fn run_live_with_upload_vra(
    platform: &PlatformProfile,
    condition: NetworkCondition,
    config: &LiveRunConfig,
    upload_vra: bool,
) -> LiveRunResult {
    let d = platform.chunk_duration;
    let segments = (config.duration.as_nanos() / d.as_nanos()) as u32;
    let rng = SimRng::new(config.seed);

    let up_bps = condition.up_cap_bps.unwrap_or(config.base_link_bps);
    let down_bps = condition.down_cap_bps.unwrap_or(config.base_link_bps);
    let mut uplink = PathQueue::new(
        PathModel::new("uplink", BandwidthTrace::constant(up_bps), config.rtt, 0.0),
        rng.split(1),
    );
    let mut downlink = PathQueue::new(
        PathModel::new(
            "downlink",
            BandwidthTrace::constant(down_bps),
            config.rtt,
            0.0,
        ),
        rng.split(2),
    );
    let mut estimator = BandwidthEstimator::festive();

    // --- Broadcaster + ingest: per delivered segment, when it is
    // published for download.
    let mut published: Vec<(u32, SimTime)> = Vec::new(); // (segment, ready time)
    let mut upload_skips = 0u32;
    let full_seg_bytes = platform.upload_segment_bytes();
    let mut up_estimator = BandwidthEstimator::festive();
    for i in 0..segments {
        let captured = SimTime::ZERO + d * (i + 1) as u64; // end of capture
        let encoded = captured + platform.encoder_delay;
        // Upload VRA (§3.4.2): scale the encoded bitrate to the
        // estimated uplink so the segment fits its real-time budget.
        let seg_bytes = if upload_vra {
            let budget = up_estimator
                .conservative(0.85)
                .map(|bps| (bps * d.as_secs_f64() / 8.0) as u64)
                .unwrap_or(full_seg_bytes);
            // Never below 10% of full quality; never above full.
            budget.clamp(full_seg_bytes / 10, full_seg_bytes)
        } else {
            full_seg_bytes
        };
        // Send-buffer check: skip the segment if the uplink backlog
        // exceeds the buffer depth ("frame skips", §3.4.1).
        let backlog = uplink.available_at(encoded).saturating_since(encoded);
        if backlog > d * platform.upload_buffer_segments as u64 {
            upload_skips += 1;
            continue;
        }
        let completion = uplink.submit(seg_bytes, encoded, Reliability::Reliable);
        let secs = completion.finished.saturating_since(encoded).as_secs_f64();
        if secs > 0.0 {
            up_estimator.record(seg_bytes as f64 * 8.0 / secs);
        }
        let up_done = completion.finished;
        // SVC passthrough (§3.4.2): the server re-muxes layers instead
        // of re-encoding the ladder.
        let server_delay = if platform.svc_passthrough {
            SimDuration::from_millis(150)
        } else {
            platform.reencode_delay
        };
        let ready = up_done + server_delay;
        published.push((i, ready));
    }

    // --- Viewer: discovery, download with (optional) adaptation,
    // buffered playback.
    let mut downloaded: Vec<(u32, SimTime, Quality)> = Vec::new();
    let mut viewer_quality = if platform.viewer_adapts {
        // Live players typically open mid-ladder; FB's ladder bottom is
        // 720p anyway.
        Quality(
            (platform.ladder.levels() as u8 - 1)
                .min(platform.ladder.top().0)
                .saturating_sub(1),
        )
    } else {
        platform.ladder.top()
    };
    for &(i, ready) in &published {
        let discovered = match platform.download {
            DownloadProtocol::DashPull { mpd_poll } => {
                let poll_ns = mpd_poll.as_nanos();
                let k = ready.as_nanos().div_ceil(poll_ns);
                SimTime::from_nanos(k * poll_ns)
            }
            DownloadProtocol::RtmpPush => ready,
        };
        if platform.viewer_adapts {
            if let Some(est) = estimator.conservative(0.85) {
                viewer_quality = platform.ladder.highest_below(est);
            }
        }
        let bytes = (platform.ladder.bitrate(viewer_quality) * d.as_secs_f64() / 8.0) as u64;
        let completion = downlink.submit(bytes, discovered, Reliability::Reliable);
        // Batch goodput over discovery→completion (pipelined queue).
        let secs = completion
            .finished
            .saturating_since(discovered)
            .as_secs_f64();
        if secs > 0.0 {
            estimator.record(bytes as f64 * 8.0 / secs);
        }
        downloaded.push((i, completion.finished, viewer_quality));
    }

    // --- Playback timeline.
    let buffer_needed = platform.viewer_buffer_segments.max(1) as usize;
    let mut latencies: Vec<(u32, f64)> = Vec::new();
    let mut qualities: Vec<f64> = Vec::new();
    let mut viewer_stalls = 0u32;
    let mut viewer_skips = 0u32;
    // Only segments displayed inside the measurement window count: the
    // paper's operator watches for the session's duration, so scenes
    // that would only appear later are never observed.
    let window_end = SimTime::ZERO + config.duration;
    if downloaded.len() >= buffer_needed {
        let play_start = downloaded[buffer_needed - 1].1;
        let mut next_display = play_start;
        for (idx, &(i, dl_done, q)) in downloaded.iter().enumerate() {
            let _ = idx;
            let mut display = next_display;
            if dl_done > display {
                viewer_stalls += 1;
                display = dl_done;
            }
            if display > window_end {
                break;
            }
            // Push players jump to the live edge when too far behind.
            let scene_time = SimTime::ZERO + d * i as u64;
            let lag = display.saturating_since(scene_time);
            if matches!(platform.download, DownloadProtocol::RtmpPush) && lag > PUSH_MAX_LAG {
                viewer_skips += 1;
                next_display = display; // timeline holds; content skipped
                continue;
            }
            latencies.push((i, lag.as_secs_f64()));
            qualities.push(q.0 as f64);
            next_display = display + d;
        }
    }

    let values: Vec<f64> = latencies.iter().map(|&(_, l)| l).collect();
    LiveRunResult {
        mean_latency_s: stats::mean(&values),
        stddev_latency_s: stats::stddev(&values),
        segment_latencies: latencies,
        upload_skips,
        viewer_skips,
        viewer_stalls,
        mean_quality: stats::mean(&qualities),
    }
}

/// Run the full Table 2 grid: five network rows × three platforms.
/// Returns rows of `(up label, down label, [facebook, periscope, youtube])`.
pub fn table2(config: &LiveRunConfig) -> Vec<(&'static str, &'static str, [f64; 3])> {
    let platforms = PlatformProfile::all();
    NetworkCondition::table2_rows()
        .into_iter()
        .map(|(up, down, cond)| {
            let mut vals = [0.0; 3];
            for (i, p) in platforms.iter().enumerate() {
                vals[i] = run_live(p, cond, config).mean_latency_s;
            }
            (up, down, vals)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unlimited() -> NetworkCondition {
        NetworkCondition {
            up_cap_bps: None,
            down_cap_bps: None,
        }
    }

    #[test]
    fn base_latency_ordering_matches_table2() {
        let cfg = LiveRunConfig::default();
        let fb = run_live(&PlatformProfile::facebook(), unlimited(), &cfg);
        let ps = run_live(&PlatformProfile::periscope(), unlimited(), &cfg);
        let yt = run_live(&PlatformProfile::youtube(), unlimited(), &cfg);
        assert!(
            fb.mean_latency_s < ps.mean_latency_s && ps.mean_latency_s < yt.mean_latency_s,
            "expected FB < Periscope < YouTube, got {:.1} / {:.1} / {:.1}",
            fb.mean_latency_s,
            ps.mean_latency_s,
            yt.mean_latency_s
        );
        // "The base latency when the network bandwidth is not limited is
        // non-trivial": several seconds everywhere.
        assert!(fb.mean_latency_s > 4.0);
        assert!(yt.mean_latency_s > 15.0);
    }

    #[test]
    fn base_latencies_near_paper_values() {
        let cfg = LiveRunConfig::default();
        let fb = run_live(&PlatformProfile::facebook(), unlimited(), &cfg).mean_latency_s;
        let ps = run_live(&PlatformProfile::periscope(), unlimited(), &cfg).mean_latency_s;
        let yt = run_live(&PlatformProfile::youtube(), unlimited(), &cfg).mean_latency_s;
        assert!((fb - 9.2).abs() < 3.0, "facebook {fb:.1} vs paper 9.2");
        assert!((ps - 12.4).abs() < 3.5, "periscope {ps:.1} vs paper 12.4");
        assert!((yt - 22.2).abs() < 5.0, "youtube {yt:.1} vs paper 22.2");
    }

    #[test]
    fn poor_uplink_inflates_latency_and_skips() {
        let cfg = LiveRunConfig::default();
        let base = run_live(&PlatformProfile::facebook(), unlimited(), &cfg);
        let starved = run_live(
            &PlatformProfile::facebook(),
            NetworkCondition {
                up_cap_bps: Some(0.5e6),
                down_cap_bps: None,
            },
            &cfg,
        );
        assert!(starved.mean_latency_s > base.mean_latency_s + 2.0);
        assert!(
            starved.upload_skips > 0,
            "0.5 Mbps uplink must skip segments"
        );
    }

    #[test]
    fn poor_downlink_inflates_latency() {
        let cfg = LiveRunConfig::default();
        for p in PlatformProfile::all() {
            let base = run_live(&p, unlimited(), &cfg);
            let starved = run_live(
                &p,
                NetworkCondition {
                    up_cap_bps: None,
                    down_cap_bps: Some(0.5e6),
                },
                &cfg,
            );
            assert!(
                starved.mean_latency_s > base.mean_latency_s,
                "{}: {:.1} !> {:.1}",
                p.name,
                starved.mean_latency_s,
                base.mean_latency_s
            );
        }
    }

    #[test]
    fn adaptive_viewers_drop_quality_under_caps() {
        let cfg = LiveRunConfig::default();
        let yt_base = run_live(&PlatformProfile::youtube(), unlimited(), &cfg);
        let yt_starved = run_live(
            &PlatformProfile::youtube(),
            NetworkCondition {
                up_cap_bps: None,
                down_cap_bps: Some(0.5e6),
            },
            &cfg,
        );
        assert!(yt_starved.mean_quality < yt_base.mean_quality);
    }

    #[test]
    fn non_adaptive_periscope_suffers_most_downlink() {
        // Table 2, row "No limit / 0.5Mbps": Periscope (61.8) worse than
        // FB (45.4) and YT (38.6).
        let cfg = LiveRunConfig::default();
        let cond = NetworkCondition {
            up_cap_bps: None,
            down_cap_bps: Some(0.5e6),
        };
        let fb = run_live(&PlatformProfile::facebook(), cond, &cfg).mean_latency_s;
        let ps = run_live(&PlatformProfile::periscope(), cond, &cfg).mean_latency_s;
        let yt = run_live(&PlatformProfile::youtube(), cond, &cfg).mean_latency_s;
        assert!(ps > yt, "periscope {ps:.1} should exceed youtube {yt:.1}");
        assert!(
            fb > yt,
            "facebook {fb:.1} should exceed youtube {yt:.1} (no low rungs)"
        );
    }

    #[test]
    fn upload_vra_restores_liveness_on_starved_uplinks() {
        // §3.4.2 direction 1: the adaptive broadcaster trades encoded
        // quality for latency instead of skipping and backlogging.
        let cfg = LiveRunConfig::default();
        let cond = NetworkCondition {
            up_cap_bps: Some(0.5e6),
            down_cap_bps: None,
        };
        let p = PlatformProfile::facebook();
        let fixed = run_live(&p, cond, &cfg);
        let adaptive = run_live_with_upload_vra(&p, cond, &cfg, true);
        assert!(
            adaptive.mean_latency_s < fixed.mean_latency_s,
            "adaptive {:.1}s must beat fixed {:.1}s",
            adaptive.mean_latency_s,
            fixed.mean_latency_s
        );
        assert!(
            adaptive.upload_skips < fixed.upload_skips,
            "adaptive skips {} vs fixed {}",
            adaptive.upload_skips,
            fixed.upload_skips
        );
    }

    #[test]
    fn upload_vra_is_noop_on_good_uplinks() {
        let cfg = LiveRunConfig::default();
        let cond = NetworkCondition {
            up_cap_bps: None,
            down_cap_bps: None,
        };
        let p = PlatformProfile::facebook();
        let fixed = run_live(&p, cond, &cfg);
        let adaptive = run_live_with_upload_vra(&p, cond, &cfg, true);
        assert!((adaptive.mean_latency_s - fixed.mean_latency_s).abs() < 0.5);
        assert_eq!(adaptive.upload_skips, 0);
    }

    #[test]
    fn svc_passthrough_cuts_latency() {
        // The §3.4.2 endgame: a Sperke-style live platform with SVC
        // passthrough, short chunks and shallow buffers beats every
        // commercial pipeline's base latency by a wide margin.
        let cfg = LiveRunConfig::default();
        let sperke = run_live(&PlatformProfile::sperke_live(), unlimited(), &cfg);
        let fb = run_live(&PlatformProfile::facebook(), unlimited(), &cfg);
        assert!(
            sperke.mean_latency_s < fb.mean_latency_s * 0.6,
            "sperke-live {:.1}s vs facebook {:.1}s",
            sperke.mean_latency_s,
            fb.mean_latency_s
        );
        assert!(
            sperke.mean_latency_s < 6.0,
            "got {:.1}s",
            sperke.mean_latency_s
        );

        // Ablation: the same platform without passthrough pays the
        // re-encode delay.
        let mut no_pt = PlatformProfile::sperke_live();
        no_pt.svc_passthrough = false;
        let slow = run_live(&no_pt, unlimited(), &cfg);
        assert!(slow.mean_latency_s > sperke.mean_latency_s + 1.0);
    }

    #[test]
    fn run_is_deterministic() {
        let cfg = LiveRunConfig::default();
        let cond = NetworkCondition {
            up_cap_bps: Some(2e6),
            down_cap_bps: None,
        };
        let a = run_live(&PlatformProfile::periscope(), cond, &cfg);
        let b = run_live(&PlatformProfile::periscope(), cond, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn table2_grid_shape() {
        // 90 s default window: shorter windows can end before a starved
        // YouTube viewer's deep buffer even fills.
        let cfg = LiveRunConfig::default();
        let grid = table2(&cfg);
        assert_eq!(grid.len(), 5);
        for (_, _, vals) in &grid {
            for v in vals {
                assert!(*v > 0.0);
            }
        }
    }
}
