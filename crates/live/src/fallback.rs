//! Spatial fall-back for live 360° upload (§3.4.2).
//!
//! "When the network quality at the broadcaster side degrades, instead
//! of stalling/skipping frames or decreasing the quality of the
//! panoramic view, the broadcaster can have an additional option of
//! what we call *spatial fall-back* that adaptively reduces the overall
//! 'horizon' being uploaded (e.g., from 360° to 180°) ... for many live
//! broadcasting events such as sports, performance, ceremony, etc., the
//! 'horizon of interest' is oftentimes narrower than full 360°."
//!
//! The open problem the paper names — "determining the (reduced)
//! horizon's centre and the lower bound of its span" — is solved here by
//! combining the broadcaster's manual hint with crowd-sourced interest
//! (a yaw histogram from viewers' gaze reports).

use serde::{Deserialize, Serialize};
use sperke_geo::angles::{angle_dist, wrap_pi};
use sperke_hmp::HeadTrace;
use sperke_sim::{SimDuration, SimTime};
use std::f64::consts::TAU;

/// The horizon actually uploaded: a yaw arc.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Horizon {
    /// Centre yaw, radians.
    pub center: f64,
    /// Total span, radians (`TAU` = full panorama).
    pub span: f64,
}

impl Horizon {
    /// The full 360° panorama.
    pub fn full() -> Horizon {
        Horizon {
            center: 0.0,
            span: TAU,
        }
    }

    /// Whether a yaw falls inside the horizon.
    pub fn contains(&self, yaw: f64) -> bool {
        if self.span >= TAU - 1e-12 {
            return true;
        }
        angle_dist(yaw, self.center) <= self.span / 2.0 + 1e-12
    }

    /// Fraction of the panorama covered.
    pub fn coverage(&self) -> f64 {
        (self.span / TAU).min(1.0)
    }
}

/// A yaw-interest histogram built from viewer gaze reports (the
/// realtime crowd data) and/or broadcaster hints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterestProfile {
    /// Histogram over yaw bins spanning `[-π, π)`.
    bins: Vec<f64>,
}

impl InterestProfile {
    /// Number of yaw bins used.
    pub const BINS: usize = 36; // 10° resolution

    /// An empty (uniform) profile.
    pub fn new() -> InterestProfile {
        InterestProfile {
            bins: vec![0.0; Self::BINS],
        }
    }

    /// Record one gaze yaw observation.
    pub fn record(&mut self, yaw: f64) {
        let idx = Self::bin_of(yaw);
        self.bins[idx] += 1.0;
    }

    /// Record a broadcaster hint at `yaw` with the given weight.
    pub fn record_hint(&mut self, yaw: f64, weight: f64) {
        let idx = Self::bin_of(yaw);
        self.bins[idx] += weight.max(0.0);
    }

    /// Build from viewer traces sampled around time `at`.
    pub fn from_traces(traces: &[HeadTrace], at: SimTime) -> InterestProfile {
        let mut p = InterestProfile::new();
        for tr in traces {
            p.record(tr.at(at).yaw);
        }
        p
    }

    fn bin_of(yaw: f64) -> usize {
        let w = wrap_pi(yaw);
        let frac = (w + std::f64::consts::PI) / TAU;
        ((frac * Self::BINS as f64) as usize).min(Self::BINS - 1)
    }

    fn bin_center(idx: usize) -> f64 {
        -std::f64::consts::PI + (idx as f64 + 0.5) * TAU / Self::BINS as f64
    }

    /// Total observation mass.
    pub fn total(&self) -> f64 {
        self.bins.iter().sum()
    }

    /// The narrowest horizon centred on the interest mass that captures
    /// at least `mass_fraction` of observations, never narrower than
    /// `min_span` (the paper: "ideally it should be wider than the
    /// concert's stage").
    pub fn horizon_for(&self, mass_fraction: f64, min_span: f64) -> Horizon {
        let total = self.total();
        if total <= 0.0 {
            return Horizon::full();
        }
        let target = total * mass_fraction.clamp(0.0, 1.0);
        // Try every bin as centre; grow symmetric windows; keep the
        // narrowest window reaching the target mass.
        let mut best = Horizon::full();
        for c in 0..Self::BINS {
            let mut mass = self.bins[c];
            let mut radius = 0usize;
            while mass < target && radius < Self::BINS / 2 {
                radius += 1;
                let left = (c + Self::BINS - radius) % Self::BINS;
                let right = (c + radius) % Self::BINS;
                mass += self.bins[left];
                if left != right {
                    mass += self.bins[right];
                }
            }
            if mass >= target {
                let span = ((2 * radius + 1) as f64 * TAU / Self::BINS as f64).min(TAU);
                if span < best.span {
                    best = Horizon {
                        center: Self::bin_center(c),
                        span,
                    };
                }
            }
        }
        if best.span < min_span {
            best.span = min_span;
        }
        best
    }
}

impl Default for InterestProfile {
    fn default() -> Self {
        Self::new()
    }
}

/// The broadcaster's adaptation strategy under uplink pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UploadStrategy {
    /// Classic: reduce the encoding quality of the full panorama.
    QualityOnly,
    /// §3.4.2: keep quality, shrink the uploaded horizon toward the
    /// interest region (down to a minimum span).
    SpatialFallback,
}

/// Outcome of one adaptation decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UploadPlan {
    /// The uploaded horizon.
    pub horizon: Horizon,
    /// The encoded quality as a fraction of the full-quality bitrate
    /// (1.0 = original quality).
    pub quality_scale: f64,
    /// Resulting upload bitrate, bits/second.
    pub bitrate_bps: f64,
}

/// Decide what to upload given the available uplink rate.
///
/// Both strategies must fit `available_bps`; they differ in *what they
/// sacrifice*: `QualityOnly` scales the bitrate of the whole panorama,
/// `SpatialFallback` first narrows the horizon (keeping per-degree
/// quality) and only then, if the minimum span still does not fit,
/// scales quality too.
pub fn plan_upload(
    strategy: UploadStrategy,
    full_bitrate_bps: f64,
    available_bps: f64,
    interest: &InterestProfile,
    min_span: f64,
) -> UploadPlan {
    assert!(full_bitrate_bps > 0.0);
    let available = available_bps.max(1.0);
    if available >= full_bitrate_bps {
        return UploadPlan {
            horizon: Horizon::full(),
            quality_scale: 1.0,
            bitrate_bps: full_bitrate_bps,
        };
    }
    match strategy {
        UploadStrategy::QualityOnly => UploadPlan {
            horizon: Horizon::full(),
            quality_scale: available / full_bitrate_bps,
            bitrate_bps: available,
        },
        UploadStrategy::SpatialFallback => {
            // Narrow the horizon to the interest region; bitrate scales
            // with angular coverage.
            let needed_coverage = available / full_bitrate_bps;
            let span_limit = (needed_coverage * TAU).max(min_span);
            // Centre on interest; ask for 85% of the viewing mass, then
            // clamp the span to what the uplink affords.
            let mut horizon = interest.horizon_for(0.85, min_span);
            if horizon.span > span_limit {
                horizon.span = span_limit;
            }
            let bitrate = full_bitrate_bps * horizon.coverage();
            if bitrate <= available {
                UploadPlan {
                    horizon,
                    quality_scale: 1.0,
                    bitrate_bps: bitrate,
                }
            } else {
                // Even the minimum span doesn't fit: shave quality too.
                UploadPlan {
                    horizon,
                    quality_scale: available / bitrate,
                    bitrate_bps: available,
                }
            }
        }
    }
}

/// Viewer-experience score for an upload plan: over the viewer traces,
/// the mean of `quality_scale` when the gaze is inside the uploaded
/// horizon and `0` when outside (the region simply isn't there).
pub fn viewer_experience(
    plan: &UploadPlan,
    traces: &[HeadTrace],
    duration: SimDuration,
) -> ExperienceReport {
    let mut in_region = 0usize;
    let mut total = 0usize;
    let step = SimDuration::from_millis(200);
    for tr in traces {
        let mut t = SimTime::ZERO;
        let end = SimTime::ZERO + duration;
        while t < end {
            total += 1;
            if plan.horizon.contains(tr.at(t).yaw) {
                in_region += 1;
            }
            t += step;
        }
    }
    let coverage_hit = if total == 0 {
        0.0
    } else {
        in_region as f64 / total as f64
    };
    ExperienceReport {
        mean_quality: plan.quality_scale * coverage_hit,
        gaze_coverage: coverage_hit,
        quality_scale: plan.quality_scale,
    }
}

/// Viewer experience summary under an upload plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperienceReport {
    /// Mean delivered quality across gaze samples (0..1).
    pub mean_quality: f64,
    /// Fraction of gaze samples inside the uploaded horizon.
    pub gaze_coverage: f64,
    /// Encoded quality scale of the plan.
    pub quality_scale: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sperke_geo::Orientation;
    use sperke_hmp::{generate_ensemble, AttentionModel};

    fn stage_traces() -> Vec<HeadTrace> {
        let att = AttentionModel::stage(3);
        generate_ensemble(&att, 8, SimDuration::from_secs(20), 11)
    }

    #[test]
    fn horizon_contains_wraps() {
        let h = Horizon {
            center: 3.0,
            span: 1.0,
        };
        assert!(h.contains(3.3));
        assert!(h.contains(-2.9), "arc wraps past π");
        assert!(!h.contains(0.0));
        assert!(Horizon::full().contains(2.0));
    }

    #[test]
    fn interest_profile_finds_stage() {
        let traces = stage_traces();
        let profile = InterestProfile::from_traces(&traces, SimTime::from_secs(10));
        let h = profile.horizon_for(0.85, 60f64.to_radians());
        assert!(
            h.span < TAU * 0.7,
            "stage interest is concentrated, span {}",
            h.span
        );
        // The stage is near yaw 0 for this attention seed.
        assert!(angle_dist(h.center, 0.0) < 1.0, "center {}", h.center);
    }

    #[test]
    fn empty_profile_returns_full_horizon() {
        let p = InterestProfile::new();
        assert_eq!(p.horizon_for(0.9, 1.0), Horizon::full());
    }

    #[test]
    fn min_span_enforced() {
        let mut p = InterestProfile::new();
        for _ in 0..100 {
            p.record(0.0); // everything in one bin
        }
        let h = p.horizon_for(0.9, 120f64.to_radians());
        assert!(h.span >= 120f64.to_radians() - 1e-9);
    }

    #[test]
    fn ample_uplink_uploads_everything() {
        let p = InterestProfile::new();
        let plan = plan_upload(UploadStrategy::SpatialFallback, 4e6, 10e6, &p, 1.0);
        assert_eq!(plan.horizon, Horizon::full());
        assert_eq!(plan.quality_scale, 1.0);
    }

    #[test]
    fn quality_only_keeps_full_horizon() {
        let p = InterestProfile::new();
        let plan = plan_upload(UploadStrategy::QualityOnly, 4e6, 1e6, &p, 1.0);
        assert_eq!(plan.horizon, Horizon::full());
        assert!((plan.quality_scale - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fallback_keeps_quality_by_narrowing() {
        let traces = stage_traces();
        let profile = InterestProfile::from_traces(&traces, SimTime::from_secs(10));
        let plan = plan_upload(
            UploadStrategy::SpatialFallback,
            4e6,
            2e6,
            &profile,
            60f64.to_radians(),
        );
        assert!(plan.horizon.span < TAU);
        assert_eq!(plan.quality_scale, 1.0, "fallback trades span, not quality");
        assert!(plan.bitrate_bps <= 2e6 + 1.0);
    }

    #[test]
    fn fallback_beats_quality_only_for_stage_content() {
        // The paper's claim: "reducing the uploaded horizon may bring
        // better user experience compared to blindly reducing the
        // quality" — when interest is concentrated.
        let traces = stage_traces();
        let profile = InterestProfile::from_traces(&traces, SimTime::from_secs(10));
        let available = 1.6e6; // 40 % of the 4 Mbps full rate
        let q_plan = plan_upload(UploadStrategy::QualityOnly, 4e6, available, &profile, 1.0);
        let s_plan = plan_upload(
            UploadStrategy::SpatialFallback,
            4e6,
            available,
            &profile,
            1.0,
        );
        let dur = SimDuration::from_secs(20);
        let q = viewer_experience(&q_plan, &traces, dur);
        let s = viewer_experience(&s_plan, &traces, dur);
        assert!(
            s.mean_quality > q.mean_quality,
            "fallback {:.3} should beat quality-only {:.3}",
            s.mean_quality,
            q.mean_quality
        );
    }

    #[test]
    fn quality_only_wins_for_scattered_interest() {
        // When viewers look everywhere, narrowing the horizon hides
        // content; quality-only degrades more gracefully.
        let traces: Vec<HeadTrace> = (0..8)
            .map(|i| {
                let yaw = i as f64 * 45.0 - 180.0;
                HeadTrace::from_fn(SimDuration::from_secs(20), move |_| {
                    Orientation::from_degrees(yaw, 0.0, 0.0)
                })
            })
            .collect();
        let profile = InterestProfile::from_traces(&traces, SimTime::from_secs(10));
        let available = 1.6e6;
        let q_plan = plan_upload(UploadStrategy::QualityOnly, 4e6, available, &profile, 1.0);
        let s_plan = plan_upload(
            UploadStrategy::SpatialFallback,
            4e6,
            available,
            &profile,
            1.0,
        );
        let dur = SimDuration::from_secs(20);
        let q = viewer_experience(&q_plan, &traces, dur);
        let s = viewer_experience(&s_plan, &traces, dur);
        assert!(
            q.mean_quality >= s.mean_quality,
            "scattered interest: quality-only {:.3} vs fallback {:.3}",
            q.mean_quality,
            s.mean_quality
        );
    }

    #[test]
    fn severe_shortfall_scales_quality_too() {
        let mut p = InterestProfile::new();
        p.record_hint(0.0, 10.0);
        let plan = plan_upload(
            UploadStrategy::SpatialFallback,
            4e6,
            0.1e6,
            &p,
            120f64.to_radians(),
        );
        assert!(
            plan.quality_scale < 1.0,
            "min span can't fit 0.1 Mbps at full quality"
        );
        assert!(plan.bitrate_bps <= 0.1e6 + 1.0);
    }
}
