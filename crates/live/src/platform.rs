//! Commercial live-360° platform profiles (§3.4.1).
//!
//! The paper's pilot study characterizes Facebook, YouTube and
//! Periscope: all ingest via RTMP over TCP; Facebook/YouTube distribute
//! via DASH pull (FB re-encodes 720p/1080p, YT six levels 144p–1080p),
//! Periscope pushes RTMP to viewers with no adaptation. The profile
//! constants below are calibrated so the simulated pipeline lands near
//! Table 2's measured base latencies (FB 9.2 s, Periscope 12.4 s,
//! YT 22.2 s) — the *structure* (who buffers where) follows the paper's
//! protocol findings.

use serde::{Deserialize, Serialize};
use sperke_sim::SimDuration;
use sperke_video::{Ladder, Rung};

/// How the platform delivers to viewers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DownloadProtocol {
    /// Pull-based HTTP DASH: viewers poll the MPD, then fetch chunks.
    DashPull {
        /// MPD refresh period.
        mpd_poll: SimDuration,
    },
    /// Push-based RTMP: the server pushes as soon as content is ready.
    RtmpPush,
}

/// A live platform's end-to-end pipeline constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformProfile {
    /// Platform name.
    pub name: String,
    /// Upload (and download re-mux) segment duration.
    pub chunk_duration: SimDuration,
    /// Broadcaster-side encode latency per segment.
    pub encoder_delay: SimDuration,
    /// Broadcaster send-buffer depth in segments; beyond it, new
    /// segments are skipped ("frame skips" under poor uplinks).
    pub upload_buffer_segments: u32,
    /// Server-side delay to re-encode a segment into the ladder.
    pub reencode_delay: SimDuration,
    /// Download protocol.
    pub download: DownloadProtocol,
    /// Delivery ladder (the *actual* bitrates observed on the wire;
    /// 360° live content is delivered FoV-agnostically as a regular
    /// video stream, §3.4.1).
    pub ladder: Ladder,
    /// The broadcaster's fixed upload bitrate, bits/second ("video
    /// quality is either fixed or manually specified", §3.4.1).
    pub upload_bitrate_bps: f64,
    /// Whether the viewer adapts quality (Periscope does not).
    pub viewer_adapts: bool,
    /// Segments the viewer buffers before starting playback.
    pub viewer_buffer_segments: u32,
    /// §3.4.2: "if the broadcaster employs SVC encoding, then there is
    /// no need for the server to perform re-encoding because the client
    /// player can directly assemble individual layers into chunks with
    /// different qualities." When set, the ingest re-encode collapses
    /// to a re-mux.
    pub svc_passthrough: bool,
}

fn rung(name: &str, mbps: f64, height: u32) -> Rung {
    Rung {
        name: name.into(),
        bitrate_bps: mbps * 1e6,
        height,
    }
}

impl PlatformProfile {
    /// Facebook live-360: 2 s DASH segments, shallow viewer buffer,
    /// 720p/1080p ladder. The lowest measured base latency (9.2 s).
    pub fn facebook() -> PlatformProfile {
        PlatformProfile {
            name: "facebook".into(),
            chunk_duration: SimDuration::from_secs(2),
            encoder_delay: SimDuration::from_millis(500),
            upload_buffer_segments: 0,
            reencode_delay: SimDuration::from_millis(1500),
            download: DownloadProtocol::DashPull {
                mpd_poll: SimDuration::from_secs(1),
            },
            ladder: Ladder::new(vec![rung("720p", 1.8, 720), rung("1080p", 4.0, 1080)]),
            upload_bitrate_bps: 4.0e6,
            viewer_adapts: true,
            svc_passthrough: false,
            viewer_buffer_segments: 3,
        }
    }

    /// Periscope: RTMP push both ways, no adaptation, a deep viewer
    /// jitter buffer (measured base 12.4 s).
    pub fn periscope() -> PlatformProfile {
        PlatformProfile {
            name: "periscope".into(),
            chunk_duration: SimDuration::from_secs(1),
            encoder_delay: SimDuration::from_millis(500),
            upload_buffer_segments: 40,
            reencode_delay: SimDuration::from_millis(800),
            download: DownloadProtocol::RtmpPush,
            ladder: Ladder::new(vec![rung("1080p", 2.5, 1080)]),
            upload_bitrate_bps: 2.5e6,
            viewer_adapts: false,
            svc_passthrough: false,
            viewer_buffer_segments: 11,
        }
    }

    /// YouTube live-360: 4–5 s DASH segments, six-level ladder, deep
    /// player buffer (measured base 22.2 s).
    pub fn youtube() -> PlatformProfile {
        PlatformProfile {
            name: "youtube".into(),
            chunk_duration: SimDuration::from_secs(4),
            encoder_delay: SimDuration::from_millis(800),
            upload_buffer_segments: 0,
            reencode_delay: SimDuration::from_secs(3),
            download: DownloadProtocol::DashPull {
                mpd_poll: SimDuration::from_secs(2),
            },
            ladder: Ladder::new(vec![
                rung("144p", 0.15, 144),
                rung("240p", 0.3, 240),
                rung("360p", 0.6, 360),
                rung("480p", 1.0, 480),
                rung("720p", 2.2, 720),
                rung("1080p", 4.0, 1080),
            ]),
            upload_bitrate_bps: 1.9e6,
            viewer_adapts: true,
            svc_passthrough: false,
            viewer_buffer_segments: 4,
        }
    }

    /// A hypothetical Sperke live platform (§3.4.2): the broadcaster
    /// uploads SVC, the server merely re-muxes (no re-encode), chunks
    /// are short, and the viewer buffer is shallow.
    pub fn sperke_live() -> PlatformProfile {
        PlatformProfile {
            name: "sperke-live".into(),
            chunk_duration: SimDuration::from_secs(1),
            encoder_delay: SimDuration::from_millis(400),
            upload_buffer_segments: 2,
            reencode_delay: SimDuration::from_secs(2), // ignored: SVC passthrough
            download: DownloadProtocol::DashPull {
                mpd_poll: SimDuration::from_millis(500),
            },
            ladder: Ladder::new(vec![
                rung("360p", 0.66, 360),  // base layer
                rung("720p", 2.4, 720),   // +enhancement 1 (10% SVC overhead)
                rung("1080p", 4.4, 1080), // +enhancement 2
            ]),
            upload_bitrate_bps: 4.4e6,
            viewer_adapts: true,
            svc_passthrough: true,
            viewer_buffer_segments: 2,
        }
    }

    /// The three measured platforms, in Table 2 column order.
    pub fn all() -> Vec<PlatformProfile> {
        vec![
            PlatformProfile::facebook(),
            PlatformProfile::periscope(),
            PlatformProfile::youtube(),
        ]
    }

    /// The broadcaster's fixed upload bitrate.
    pub fn upload_bitrate(&self) -> f64 {
        self.upload_bitrate_bps
    }

    /// Bytes of one uploaded segment.
    pub fn upload_segment_bytes(&self) -> u64 {
        (self.upload_bitrate() * self.chunk_duration.as_secs_f64() / 8.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_structurally_distinct() {
        let fb = PlatformProfile::facebook();
        let ps = PlatformProfile::periscope();
        let yt = PlatformProfile::youtube();
        assert!(matches!(fb.download, DownloadProtocol::DashPull { .. }));
        assert!(matches!(yt.download, DownloadProtocol::DashPull { .. }));
        assert!(matches!(ps.download, DownloadProtocol::RtmpPush));
        assert!(!ps.viewer_adapts, "Periscope has no rate adaptation");
        assert_eq!(yt.ladder.levels(), 6, "YouTube: 144p..1080p");
        assert_eq!(fb.ladder.levels(), 2, "Facebook: 720p/1080p");
    }

    #[test]
    fn upload_segment_bytes_match_bitrate() {
        let fb = PlatformProfile::facebook();
        // 4 Mbps * 2 s / 8 = 1 MB.
        assert_eq!(fb.upload_segment_bytes(), 1_000_000);
        // YouTube broadcasters push ~1.9 Mbps over 4 s segments.
        assert_eq!(PlatformProfile::youtube().upload_segment_bytes(), 950_000);
    }

    #[test]
    fn all_returns_table2_order() {
        let names: Vec<String> = PlatformProfile::all().into_iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["facebook", "periscope", "youtube"]);
    }
}
