//! Perfect head-movement prediction, by cheating.
//!
//! §3.1.2 part one: "let us assume that the HMP is perfect. Then the
//! FoV-guided 360° VRA essentially falls back to regular (non-360°)
//! VRA." The [`OracleForecaster`] peeks at the viewer's actual future
//! gaze, so experiments can separate *prediction* error from
//! *adaptation* error and report the perfect-HMP upper bound.

use crate::fusion::{Forecaster, TileForecast};
use crate::trace::HeadTrace;
use sperke_geo::{Orientation, TileGrid, TileId, Viewport, VisibilityCache};
use sperke_sim::{SimDuration, SimTime};
use sperke_video::ChunkTime;

/// A forecaster with oracle access to the viewer's trace.
#[derive(Debug, Clone)]
pub struct OracleForecaster {
    /// The trace it peeks into (indexed by the same playback timeline
    /// the history timestamps use).
    pub trace: HeadTrace,
    /// Probability assigned to tiles outside the true viewport (0 for a
    /// pure oracle; a small value keeps OOS selection exercised).
    pub outside_probability: f64,
    /// How much of the chunk after `target_time` the oracle covers
    /// (the tile set is the union of viewports over the window, since a
    /// chunk is displayed for its whole duration, not an instant).
    pub window: SimDuration,
    /// Memoized visibility (adjacent chunks revisit sample instants).
    vis: VisibilityCache,
}

impl OracleForecaster {
    /// A pure oracle: true viewport tiles (over a 1 s chunk window) at
    /// probability 1, everything else at 0.
    pub fn new(trace: HeadTrace) -> OracleForecaster {
        OracleForecaster {
            trace,
            outside_probability: 0.0,
            window: SimDuration::from_secs(1),
            vis: VisibilityCache::default(),
        }
    }

    /// Same oracle, but with `outside_probability` for out-of-sight
    /// tiles (keeps OOS chunk selection exercised).
    pub fn with_outside_probability(trace: HeadTrace, p: f64) -> OracleForecaster {
        OracleForecaster {
            outside_probability: p,
            ..OracleForecaster::new(trace)
        }
    }
}

impl Forecaster for OracleForecaster {
    fn forecast(
        &self,
        grid: &TileGrid,
        _history: &[(SimTime, Orientation)],
        _now: SimTime,
        target_time: SimTime,
        _chunk_time: ChunkTime,
    ) -> TileForecast {
        let mut visible: Vec<TileId> = Vec::new();
        for frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let gaze = self.trace.at(target_time + self.window.mul_f64(frac));
            for t in self.vis.visible_tile_set(&Viewport::headset(gaze), grid) {
                if !visible.contains(&t) {
                    visible.push(t);
                }
            }
        }
        let probs = grid
            .tiles()
            .map(|t| {
                if visible.contains(&t) {
                    1.0
                } else {
                    self.outside_probability
                }
            })
            .collect();
        TileForecast::new(probs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{AttentionModel, Behavior, TraceGenerator};
    use crate::ViewingContext;
    use sperke_sim::SimDuration;

    fn trace() -> HeadTrace {
        TraceGenerator::new(
            AttentionModel::generic(2),
            Behavior::Explorer,
            ViewingContext::default(),
        )
        .generate(SimDuration::from_secs(20), 5)
    }

    #[test]
    fn oracle_always_covers_the_true_gaze() {
        let tr = trace();
        let oracle = OracleForecaster::new(tr.clone());
        let grid = TileGrid::new(4, 6);
        for s in 1..18 {
            let target = SimTime::from_secs(s);
            let history = tr.history(SimTime::from_secs(s.saturating_sub(2)), 50);
            let fc = oracle.forecast(&grid, &history, SimTime::ZERO, target, ChunkTime(s as u32));
            let actual_tile = grid.tile_of_direction(tr.at(target).direction());
            assert_eq!(fc.prob(actual_tile), 1.0, "t={s}");
        }
    }

    #[test]
    fn pure_oracle_assigns_zero_outside() {
        let tr = HeadTrace::from_fn(SimDuration::from_secs(5), |_| Orientation::FRONT);
        let oracle = OracleForecaster::new(tr);
        let grid = TileGrid::new(4, 6);
        let history = vec![(SimTime::ZERO, Orientation::FRONT)];
        let fc = oracle.forecast(
            &grid,
            &history,
            SimTime::ZERO,
            SimTime::from_secs(2),
            ChunkTime(2),
        );
        let behind = grid.tile_of_direction(-sperke_geo::Vec3::X);
        assert_eq!(fc.prob(behind), 0.0);
        // And only a minority of tiles carry probability.
        let covered = grid.tiles().filter(|&t| fc.prob(t) > 0.0).count();
        assert!(covered < grid.tile_count() / 2);
    }

    #[test]
    fn outside_probability_is_configurable() {
        let tr = HeadTrace::from_fn(SimDuration::from_secs(5), |_| Orientation::FRONT);
        let oracle = OracleForecaster::with_outside_probability(tr, 0.1);
        let grid = TileGrid::new(4, 6);
        let history = vec![(SimTime::ZERO, Orientation::FRONT)];
        let fc = oracle.forecast(
            &grid,
            &history,
            SimTime::ZERO,
            SimTime::from_secs(2),
            ChunkTime(2),
        );
        let behind = grid.tile_of_direction(-sperke_geo::Vec3::X);
        assert!((fc.prob(behind) - 0.1).abs() < 1e-12);
    }
}
