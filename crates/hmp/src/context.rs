//! Lightweight viewing context (§3.2): watching mode, mobility and pose.
//!
//! The paper's app collects "indoor/outdoor, watching mode (bare
//! smartphone vs headset), mobility (stationary vs mobile), pose
//! (sitting, standing, lying etc.)" and uses it to prune implausible
//! head movements — "when the user is lying on a couch or bed, it is
//! quite difficult for her to view a direction that is 180° behind".

use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// How the user watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WatchMode {
    /// Holding the phone ("magic window").
    BareSmartphone,
    /// Wearing a headset (Cardboard-class).
    Headset,
}

/// Whether the user is moving about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mobility {
    /// Standing/sitting still.
    Stationary,
    /// Walking or in a vehicle.
    Mobile,
}

/// Body pose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pose {
    /// Seated; comfortable yaw range roughly ±120°.
    Sitting,
    /// Standing; can turn fully around.
    Standing,
    /// Lying down; yaw practically limited to roughly ±90°.
    Lying,
}

/// The contextual signals the §3.2 study collects per session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ViewingContext {
    /// Watching mode.
    pub mode: WatchMode,
    /// Mobility state.
    pub mobility: Mobility,
    /// Body pose.
    pub pose: Pose,
}

impl Default for ViewingContext {
    fn default() -> Self {
        ViewingContext {
            mode: WatchMode::Headset,
            mobility: Mobility::Stationary,
            pose: Pose::Sitting,
        }
    }
}

impl ViewingContext {
    /// The reachable yaw half-range around the session's "front", radians.
    ///
    /// This is the pruning signal of §3.2: directions outside
    /// `[-limit, +limit]` are treated as (near-)unreachable.
    pub fn yaw_half_range(&self) -> f64 {
        match self.pose {
            Pose::Standing => PI,                 // full turn possible
            Pose::Sitting => 120f64.to_radians(), // torso twist
            Pose::Lying => 90f64.to_radians(),    // paper's couch example
        }
    }

    /// Whether a yaw offset from the session front is plausibly reachable.
    pub fn yaw_reachable(&self, yaw_offset: f64) -> bool {
        sperke_geo::angles::wrap_pi(yaw_offset).abs() <= self.yaw_half_range() + 1e-12
    }

    /// A multiplier on expected head speed: phone-in-hand panning is
    /// slower than head rotation; mobile users move their view less.
    pub fn speed_factor(&self) -> f64 {
        let mode = match self.mode {
            WatchMode::Headset => 1.0,
            WatchMode::BareSmartphone => 0.7,
        };
        let mobility = match self.mobility {
            Mobility::Stationary => 1.0,
            Mobility::Mobile => 0.6,
        };
        mode * mobility
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lying_cannot_look_behind() {
        let ctx = ViewingContext {
            pose: Pose::Lying,
            ..Default::default()
        };
        assert!(
            !ctx.yaw_reachable(PI),
            "180° behind is unreachable lying down"
        );
        assert!(ctx.yaw_reachable(80f64.to_radians()));
    }

    #[test]
    fn standing_reaches_everything() {
        let ctx = ViewingContext {
            pose: Pose::Standing,
            ..Default::default()
        };
        assert!(ctx.yaw_reachable(PI));
        assert!(ctx.yaw_reachable(-PI));
    }

    #[test]
    fn yaw_reachable_wraps_input() {
        let ctx = ViewingContext {
            pose: Pose::Sitting,
            ..Default::default()
        };
        // 350° offset wraps to -10°, well within a sitting range.
        assert!(ctx.yaw_reachable(350f64.to_radians()));
    }

    #[test]
    fn speed_factors_ordered() {
        let headset = ViewingContext::default();
        let phone = ViewingContext {
            mode: WatchMode::BareSmartphone,
            ..Default::default()
        };
        let walking = ViewingContext {
            mobility: Mobility::Mobile,
            ..Default::default()
        };
        assert!(phone.speed_factor() < headset.speed_factor());
        assert!(walking.speed_factor() < headset.speed_factor());
    }
}
