//! The §3.2 study's data backend: what the paper's player app would
//! upload, and the mining that turns it into streaming intelligence.
//!
//! "We will develop a 360° video player app and publish it to mobile app
//! stores ... the app will collect a wide range of information such as
//! (1) the video URL, (2) users' head movement during 360° video
//! playback, (3) user's rating of the video, (4) lightweight contextual
//! information ... uncompressed head movement data at 50 Hz is less than
//! 5 Kbps, \[so\] our system can easily scale."
//!
//! A [`StudyDataset`] stores sessions, answers the three §3.2 research
//! questions (cross-user heatmaps, per-user profiles, context priors)
//! and round-trips through newline-delimited JSON.

use crate::popularity::Heatmap;
use crate::trace::HeadTrace;
use serde::{Deserialize, Serialize};
use sperke_geo::TileGrid;
use sperke_sim::{stats, SimDuration};
use std::collections::BTreeMap;

/// One uploaded viewing session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionRecord {
    /// The watched video (stand-in for the URL).
    pub video_id: u64,
    /// The (anonymous) user.
    pub user_id: u64,
    /// The user's 1–5 star rating, if given.
    pub rating: Option<u8>,
    /// The 50 Hz head-movement log with its context metadata.
    pub trace: HeadTrace,
}

impl SessionRecord {
    /// Approximate upload size of this session's head data in bits per
    /// second of playback — the paper's scalability estimate (< 5 kbps).
    pub fn head_data_bitrate_bps(&self) -> f64 {
        // yaw/pitch/roll as 3 × 16-bit fixed point at the sample rate.
        3.0 * 16.0 * self.trace.sample_hz()
    }
}

/// What the study learns about one user across videos (§3.2 question 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// Sessions observed.
    pub sessions: u32,
    /// 95th-percentile head speed across all sessions, rad/s — the
    /// "speed bound" that limits how far a tile fetch can be deferred.
    pub speed_bound: f64,
    /// Median head speed, rad/s.
    pub median_speed: f64,
    /// Mean rating given (0 when never rated).
    pub mean_rating: f64,
}

/// The collected corpus.
///
/// ```
/// use sperke_hmp::{StudyDataset, SessionRecord, HeadTrace};
/// use sperke_geo::Orientation;
/// use sperke_sim::SimDuration;
///
/// let mut ds = StudyDataset::new();
/// let trace = HeadTrace::from_fn(SimDuration::from_secs(2), |_| Orientation::FRONT);
/// ds.add(SessionRecord { video_id: 1, user_id: 7, rating: Some(5), trace });
/// assert_eq!(ds.len(), 1);
/// let profiles = ds.user_profiles();
/// assert_eq!(profiles[&7].sessions, 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StudyDataset {
    sessions: Vec<SessionRecord>,
}

impl StudyDataset {
    /// An empty dataset.
    pub fn new() -> StudyDataset {
        StudyDataset::default()
    }

    /// Ingest one session.
    pub fn add(&mut self, record: SessionRecord) {
        self.sessions.push(record);
    }

    /// All sessions.
    pub fn sessions(&self) -> &[SessionRecord] {
        &self.sessions
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when no sessions are stored.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Sessions of one video.
    pub fn for_video(&self, video_id: u64) -> Vec<&SessionRecord> {
        self.sessions
            .iter()
            .filter(|s| s.video_id == video_id)
            .collect()
    }

    /// §3.2 question 1: the cross-user heatmap for a video.
    pub fn heatmap(
        &self,
        video_id: u64,
        grid: TileGrid,
        chunk_duration: SimDuration,
        chunks: u32,
    ) -> Heatmap {
        let traces: Vec<HeadTrace> = self
            .for_video(video_id)
            .into_iter()
            .map(|s| s.trace.clone())
            .collect();
        Heatmap::build(grid, chunk_duration, chunks, &traces)
    }

    /// §3.2 question 2: per-user profiles mined across videos.
    pub fn user_profiles(&self) -> BTreeMap<u64, UserProfile> {
        let mut grouped: BTreeMap<u64, Vec<&SessionRecord>> = BTreeMap::new();
        for s in &self.sessions {
            grouped.entry(s.user_id).or_default().push(s);
        }
        grouped
            .into_iter()
            .map(|(user, sessions)| {
                let speeds95: Vec<f64> = sessions
                    .iter()
                    .map(|s| s.trace.speed_percentile(95.0))
                    .collect();
                let speeds50: Vec<f64> = sessions
                    .iter()
                    .map(|s| s.trace.speed_percentile(50.0))
                    .collect();
                let ratings: Vec<f64> = sessions
                    .iter()
                    .filter_map(|s| s.rating.map(|r| r as f64))
                    .collect();
                (
                    user,
                    UserProfile {
                        sessions: sessions.len() as u32,
                        speed_bound: stats::percentile(&speeds95, 50.0),
                        median_speed: stats::percentile(&speeds50, 50.0),
                        mean_rating: stats::mean(&ratings),
                    },
                )
            })
            .collect()
    }

    /// §3.2 question 3: how often each context appears (the prior for
    /// sessions whose context is unknown).
    pub fn context_histogram(&self) -> BTreeMap<String, u32> {
        let mut hist = BTreeMap::new();
        for s in &self.sessions {
            let key = format!("{:?}", s.trace.context);
            *hist.entry(key).or_insert(0) += 1;
        }
        hist
    }

    /// Aggregate head-data upload rate across concurrent sessions, bps —
    /// supports the paper's "our system can easily scale" estimate.
    pub fn aggregate_bitrate_bps(&self) -> f64 {
        self.sessions
            .iter()
            .map(|s| s.head_data_bitrate_bps())
            .sum()
    }

    /// Serialize to newline-delimited JSON (one session per line).
    pub fn to_ndjson(&self) -> String {
        self.sessions
            .iter()
            .map(|s| serde_json::to_string(s).expect("session serializes"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Parse from newline-delimited JSON; blank lines are skipped.
    pub fn from_ndjson(data: &str) -> Result<StudyDataset, serde_json::Error> {
        let mut ds = StudyDataset::new();
        for line in data.lines() {
            if line.trim().is_empty() {
                continue;
            }
            ds.add(serde_json::from_str(line)?);
        }
        Ok(ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{Pose, ViewingContext};
    use crate::generate::{AttentionModel, Behavior, TraceGenerator};
    use sperke_video::ChunkTime;

    fn session(video: u64, user: u64, behavior: Behavior, rating: Option<u8>) -> SessionRecord {
        let mut trace = TraceGenerator::new(
            AttentionModel::generic(video),
            behavior,
            ViewingContext::default(),
        )
        .generate(SimDuration::from_secs(10), user * 31 + video);
        trace.user_id = user;
        trace.video_id = video;
        SessionRecord {
            video_id: video,
            user_id: user,
            rating,
            trace,
        }
    }

    fn corpus() -> StudyDataset {
        let mut ds = StudyDataset::new();
        for user in 0..4u64 {
            for video in 0..3u64 {
                let behavior = if user == 0 {
                    Behavior::Still
                } else {
                    Behavior::Explorer
                };
                ds.add(session(video, user, behavior, Some((user + 1) as u8)));
            }
        }
        ds
    }

    #[test]
    fn ingest_and_filter() {
        let ds = corpus();
        assert_eq!(ds.len(), 12);
        assert_eq!(ds.for_video(1).len(), 4);
        assert!(!ds.is_empty());
    }

    #[test]
    fn heatmap_built_per_video() {
        let ds = corpus();
        let grid = TileGrid::new(4, 6);
        let map = ds.heatmap(1, grid, SimDuration::from_secs(1), 10);
        assert_eq!(map.viewer_count(ChunkTime(3)), 4);
    }

    #[test]
    fn user_profiles_distinguish_behaviours() {
        let ds = corpus();
        let profiles = ds.user_profiles();
        assert_eq!(profiles.len(), 4);
        let still = profiles[&0];
        let explorer = profiles[&1];
        assert_eq!(still.sessions, 3);
        assert!(
            still.speed_bound < explorer.speed_bound,
            "a still user's learned bound ({:.2}) must undercut an explorer's ({:.2})",
            still.speed_bound,
            explorer.speed_bound
        );
        assert!((still.mean_rating - 1.0).abs() < 1e-12);
    }

    #[test]
    fn context_histogram_counts() {
        let mut ds = corpus();
        let mut lying = session(0, 9, Behavior::Still, None);
        lying.trace.context = ViewingContext {
            pose: Pose::Lying,
            ..Default::default()
        };
        ds.add(lying);
        let hist = ds.context_histogram();
        let total: u32 = hist.values().sum();
        assert_eq!(total, 13);
        assert!(hist.keys().any(|k| k.contains("Lying")));
    }

    #[test]
    fn bitrate_matches_paper_scalability_claim() {
        let ds = corpus();
        for s in ds.sessions() {
            let bps = s.head_data_bitrate_bps();
            assert!(bps < 5_000.0, "paper: under 5 kbps, got {bps}");
        }
        assert!(ds.aggregate_bitrate_bps() < 5_000.0 * ds.len() as f64);
    }

    #[test]
    fn ndjson_roundtrip() {
        let ds = corpus();
        let text = ds.to_ndjson();
        let back = StudyDataset::from_ndjson(&text).expect("parses");
        assert_eq!(ds.len(), back.len());
        assert_eq!(ds.sessions()[5].user_id, back.sessions()[5].user_id);
        assert_eq!(ds.sessions()[5].rating, back.sessions()[5].rating);
    }

    #[test]
    fn ndjson_skips_blank_lines() {
        let ds = corpus();
        let text = format!("\n{}\n\n", ds.to_ndjson());
        assert_eq!(
            StudyDataset::from_ndjson(&text).expect("parses").len(),
            ds.len()
        );
    }
}
