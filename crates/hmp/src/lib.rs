//! # sperke-hmp — head-movement traces, behaviour models, and prediction
//!
//! The §3.2 subsystem of Sperke: "big data analytics for HMP and VRA".
//!
//! * [`HeadTrace`] — 50 Hz orientation logs with context metadata, the
//!   unit of the paper's crowd-sourced study.
//! * [`generate`] — synthetic viewer behaviour (the substitution for the
//!   paper's in-the-wild dataset): per-video attention hotspots shared
//!   across users, per-user behaviour classes.
//! * [`predictor`] — short-horizon motion predictors (persistence,
//!   linear regression, dead reckoning, damped regression).
//! * [`Heatmap`] — cross-user tile view probabilities ("popular chunks").
//! * [`FusedForecaster`] — the paper's data-fusion output: per-tile
//!   on-screen probabilities combining motion, popularity, the per-user
//!   speed bound, and context pruning.
//! * [`accuracy`] — the E5 evaluation harness.

#![warn(missing_docs)]

pub mod accuracy;
pub mod codec;
pub mod context;
pub mod dataset;
pub mod engagement;
pub mod fusion;
pub mod generate;
pub mod oracle;
pub mod popularity;
pub mod predictor;
pub mod trace;

pub use accuracy::{evaluate_forecaster, evaluate_predictor, ForecastReport, HmpReport};
pub use codec::{decode as decode_trace, encode as encode_trace, DecodeError, QUANT_ERROR};
pub use context::{Mobility, Pose, ViewingContext, WatchMode};
pub use dataset::{SessionRecord, StudyDataset, UserProfile};
pub use engagement::{estimate_engagement, Engagement, EngagementConfig};
pub use fusion::{ForecastScratch, Forecaster, FusedForecaster, FusionConfig, TileForecast};
pub use generate::{
    generate_ensemble, generate_ensemble_member, AttentionModel, Behavior, Hotspot, TraceGenerator,
};
pub use oracle::OracleForecaster;
pub use popularity::{visible_in_window, visible_in_window_cached, Heatmap};
pub use predictor::{
    AlphaBeta, DampedRegression, DeadReckoning, Ensemble, LinearRegression, Persistence, Predictor,
};
pub use trace::{HeadTrace, DEFAULT_SAMPLE_HZ};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use sperke_sim::{SimDuration, SimTime};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Generated traces always respect the pitch clamp and produce
        /// finite angles.
        #[test]
        fn traces_stay_finite(seed: u64, b in 0usize..4) {
            let g = TraceGenerator::new(
                AttentionModel::generic(seed ^ 0xF00D),
                Behavior::ALL[b],
                ViewingContext::default(),
            );
            let tr = g.generate(SimDuration::from_secs(5), seed);
            for o in tr.samples() {
                prop_assert!(o.yaw.is_finite() && o.pitch.is_finite());
                prop_assert!(o.pitch.abs() <= std::f64::consts::FRAC_PI_2 + 1e-9);
            }
        }

        /// Forecast probabilities are always within [0,1].
        #[test]
        fn forecasts_are_probabilities(seed: u64, horizon_ms in 50u64..4000) {
            let g = TraceGenerator::new(
                AttentionModel::generic(seed),
                Behavior::Explorer,
                ViewingContext::default(),
            );
            let tr = g.generate(SimDuration::from_secs(6), seed);
            let grid = sperke_geo::TileGrid::new(4, 6);
            let f = FusedForecaster::motion_only();
            let now = SimTime::from_secs(3);
            let history = tr.history(now, 50);
            let fc = f.forecast(&grid, &history, now,
                now + SimDuration::from_millis(horizon_ms), sperke_video::ChunkTime(3));
            for tile in grid.tiles() {
                let p = fc.prob(tile);
                prop_assert!((0.0..=1.0).contains(&p));
            }
        }

        /// Heatmap probabilities are valid and bounded by viewer count.
        #[test]
        fn heatmap_probabilities_valid(n_users in 1usize..6, seed: u64) {
            let att = AttentionModel::generic(seed);
            let traces = generate_ensemble(&att, n_users, SimDuration::from_secs(3), seed);
            let grid = sperke_geo::TileGrid::new(2, 4);
            let map = Heatmap::build(grid, SimDuration::from_secs(1), 3, &traces);
            for t in 0..3u32 {
                prop_assert_eq!(map.viewer_count(sperke_video::ChunkTime(t)), n_users as u32);
                for tile in grid.tiles() {
                    let p = map.tile_probability(sperke_video::ChunkTime(t), tile);
                    prop_assert!((0.0..=1.0).contains(&p));
                }
            }
        }

        /// `Heatmap::top_k`'s order is explicitly total — raw count
        /// descending, ties by ascending tile index — so it matches the
        /// independently-computed specification exactly and never
        /// depends on the order observations were recorded in. Pinned
        /// because cross-edge heatmap sharing folds reports from many
        /// nodes and relies on the cut being permutation-invariant.
        #[test]
        fn top_k_tie_break_is_total_and_record_order_invariant(
            views in proptest::collection::vec(0u16..8, 1..24),
            rot in 0usize..24,
            k in 1usize..9,
        ) {
            let grid = sperke_geo::TileGrid::new(2, 4);
            let chunk = sperke_video::ChunkTime(0);
            let record_all = |order: &[u16]| {
                let mut map = Heatmap::empty(grid, SimDuration::from_secs(1), 1);
                for &t in order {
                    map.record(chunk, &[sperke_geo::TileId(t)]);
                }
                map
            };
            let map = record_all(&views);
            // Reference order computed independently of the Heatmap:
            // count descending, then tile index ascending.
            let mut counts = [0u32; 8];
            for &t in &views {
                counts[t as usize] += 1;
            }
            let mut spec: Vec<u16> = (0..8).collect();
            spec.sort_by(|&a, &b| {
                counts[b as usize].cmp(&counts[a as usize]).then(a.cmp(&b))
            });
            let expect: Vec<sperke_geo::TileId> =
                spec.into_iter().take(k).map(sperke_geo::TileId).collect();
            prop_assert_eq!(map.top_k(chunk, k), expect);
            // Recording order never perturbs the cut.
            let mut rotated = views.clone();
            rotated.rotate_left(rot % views.len());
            prop_assert_eq!(map.top_k(chunk, k), record_all(&rotated).top_k(chunk, k));
        }

        /// The wire codec round-trips any generated trace within the
        /// quantization bound.
        #[test]
        fn codec_roundtrips(seed: u64, b in 0usize..4) {
            let g = TraceGenerator::new(
                AttentionModel::generic(seed),
                Behavior::ALL[b],
                ViewingContext::default(),
            );
            let tr = g.generate(SimDuration::from_secs(3), seed);
            let back = codec::decode(&codec::encode(&tr)).expect("decodes");
            prop_assert_eq!(back.len(), tr.len());
            for (a, d) in tr.samples().iter().zip(back.samples()) {
                prop_assert!((a.yaw - d.yaw).abs() <= 2.0 * codec::QUANT_ERROR);
                prop_assert!((a.pitch - d.pitch).abs() <= 2.0 * codec::QUANT_ERROR);
            }
        }

        /// trace.at() is continuous: nearby times yield nearby orientations.
        #[test]
        fn trace_interpolation_continuous(seed: u64, t_ms in 0u64..4900) {
            let g = TraceGenerator::new(
                AttentionModel::generic(seed),
                Behavior::Focused,
                ViewingContext::default(),
            );
            let tr = g.generate(SimDuration::from_secs(5), seed);
            let a = tr.at(SimTime::from_millis(t_ms));
            let b = tr.at(SimTime::from_millis(t_ms + 5));
            // 5 ms at a bounded speed (~3.5 rad/s incl. noise) is < 0.1 rad.
            prop_assert!(a.angular_distance(&b) < 0.1);
        }
    }
}
