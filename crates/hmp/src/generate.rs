//! Synthetic viewer behaviour: the stand-in for the paper's
//! crowd-sourced "in the wild" head-movement dataset (§3.2).
//!
//! The model has two halves:
//!
//! * a per-video [`AttentionModel`] — a small set of [`Hotspot`]s (the
//!   interesting content), possibly moving over time, **shared by all
//!   viewers of that video**. This is what makes cross-user statistics
//!   informative, exactly the structure the paper's "popular chunks"
//!   idea exploits.
//! * a per-user [`Behavior`] — how an individual reacts to those
//!   hotspots (focused, exploring, following, still), modulated by the
//!   session's [`ViewingContext`].
//!
//! Head dynamics are a first-order pursuit of the current target with
//! Ornstein–Uhlenbeck noise and Poisson target switches, sampled at the
//! study's 50 Hz.

use crate::context::{Pose, ViewingContext};
use crate::trace::{HeadTrace, DEFAULT_SAMPLE_HZ};
use serde::{Deserialize, Serialize};
use sperke_geo::angles::wrap_pi;
use sperke_geo::Orientation;
use sperke_sim::{SimDuration, SimRng};

/// A region of interest in the video, possibly moving.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hotspot {
    /// Initial yaw, radians.
    pub yaw0: f64,
    /// Mean pitch, radians.
    pub pitch0: f64,
    /// Yaw drift rate, radians/second (a moving subject).
    pub yaw_rate: f64,
    /// Pitch oscillation amplitude, radians.
    pub pitch_amp: f64,
    /// Relative attractiveness (sampling weight).
    pub weight: f64,
}

impl Hotspot {
    /// Where the hotspot is at time `t` seconds.
    pub fn position(&self, t: f64) -> Orientation {
        Orientation::new(
            self.yaw0 + self.yaw_rate * t,
            self.pitch0 + self.pitch_amp * (0.31 * t).sin(),
            0.0,
        )
    }
}

/// The per-video attention structure shared across viewers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttentionModel {
    hotspots: Vec<Hotspot>,
}

impl AttentionModel {
    /// Build from explicit hotspots.
    pub fn new(hotspots: Vec<Hotspot>) -> AttentionModel {
        assert!(!hotspots.is_empty(), "need at least one hotspot");
        assert!(
            hotspots.iter().all(|h| h.weight > 0.0),
            "weights must be positive"
        );
        AttentionModel { hotspots }
    }

    /// A generic video: 2–4 hotspots near the equator, mostly static,
    /// dominated by the front.
    pub fn generic(seed: u64) -> AttentionModel {
        let mut rng = SimRng::new(seed).split(0xA77E_0711);
        let k = 2 + rng.below(3) as usize;
        let mut hotspots = vec![Hotspot {
            yaw0: rng.normal(0.0, 0.3),
            pitch0: rng.normal(0.0, 0.1),
            yaw_rate: 0.0,
            pitch_amp: 0.05,
            weight: 3.0,
        }];
        for _ in 1..k {
            hotspots.push(Hotspot {
                yaw0: rng.uniform_in(-std::f64::consts::PI, std::f64::consts::PI),
                pitch0: rng.normal(0.0, 0.2),
                yaw_rate: rng.normal(0.0, 0.02),
                pitch_amp: 0.05,
                weight: 1.0,
            });
        }
        AttentionModel::new(hotspots)
    }

    /// A sports-style video: one dominant hotspot sweeping in yaw (the
    /// action), plus a weak static one (the crowd).
    pub fn sports(seed: u64) -> AttentionModel {
        let mut rng = SimRng::new(seed).split(0x5B0A_7211);
        AttentionModel::new(vec![
            Hotspot {
                yaw0: 0.0,
                pitch0: -0.05,
                yaw_rate: rng.uniform_in(0.15, 0.35) * if rng.chance(0.5) { 1.0 } else { -1.0 },
                pitch_amp: 0.05,
                weight: 5.0,
            },
            Hotspot {
                yaw0: rng.uniform_in(1.5, 2.5),
                pitch0: 0.1,
                yaw_rate: 0.0,
                pitch_amp: 0.02,
                weight: 1.0,
            },
        ])
    }

    /// A concert/stage video: a single strong, nearly static hotspot —
    /// the premise of §3.4.2's spatial fall-back ("the horizon of
    /// interest is oftentimes narrower than full 360°").
    pub fn stage(seed: u64) -> AttentionModel {
        let mut rng = SimRng::new(seed).split(0x57A6_E001);
        AttentionModel::new(vec![
            Hotspot {
                yaw0: rng.normal(0.0, 0.1),
                pitch0: 0.05,
                yaw_rate: 0.0,
                pitch_amp: 0.03,
                weight: 8.0,
            },
            Hotspot {
                yaw0: 2.8,
                pitch0: 0.0,
                yaw_rate: 0.0,
                pitch_amp: 0.02,
                weight: 0.5,
            },
        ])
    }

    /// The hotspots.
    pub fn hotspots(&self) -> &[Hotspot] {
        &self.hotspots
    }

    /// Sample a hotspot index by weight.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let weights: Vec<f64> = self.hotspots.iter().map(|h| h.weight).collect();
        rng.weighted_index(&weights)
    }
}

/// How an individual viewer behaves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Behavior {
    /// Locks onto hotspots, rarely switching.
    Focused,
    /// Scans the scene with frequent saccades, including away from
    /// hotspots.
    Explorer,
    /// Tracks the dominant (index 0) hotspot closely as it moves.
    Follower,
    /// Barely moves from the initial orientation.
    Still,
}

impl Behavior {
    /// All behaviour classes.
    pub const ALL: [Behavior; 4] = [
        Behavior::Focused,
        Behavior::Explorer,
        Behavior::Follower,
        Behavior::Still,
    ];

    /// Poisson rate of target switches, per second.
    fn switch_rate(self) -> f64 {
        match self {
            Behavior::Focused => 0.10,
            Behavior::Explorer => 0.60,
            Behavior::Follower => 0.02,
            Behavior::Still => 0.01,
        }
    }

    /// Pursuit gain (1/seconds): how quickly the gaze closes on the target.
    fn pursuit_gain(self) -> f64 {
        match self {
            Behavior::Focused => 2.0,
            Behavior::Explorer => 3.0,
            Behavior::Follower => 4.0,
            Behavior::Still => 0.5,
        }
    }

    /// OU noise amplitude, radians.
    fn noise(self) -> f64 {
        match self {
            Behavior::Focused => 0.02,
            Behavior::Explorer => 0.05,
            Behavior::Follower => 0.02,
            Behavior::Still => 0.01,
        }
    }

    /// Maximum angular speed, radians/second (before context scaling).
    fn max_speed(self) -> f64 {
        match self {
            Behavior::Focused => 2.0,
            Behavior::Explorer => 3.0,
            Behavior::Follower => 2.5,
            Behavior::Still => 0.5,
        }
    }

    /// Probability that a saccade targets a random direction rather than
    /// a hotspot.
    fn wander_prob(self) -> f64 {
        match self {
            Behavior::Explorer => 0.5,
            Behavior::Focused => 0.1,
            Behavior::Follower => 0.0,
            Behavior::Still => 0.2,
        }
    }
}

/// Generates head traces for one (video, user) pair.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    /// The video's attention structure.
    pub attention: AttentionModel,
    /// The user's behaviour class.
    pub behavior: Behavior,
    /// The session context.
    pub context: ViewingContext,
}

impl TraceGenerator {
    /// Construct a generator.
    pub fn new(attention: AttentionModel, behavior: Behavior, context: ViewingContext) -> Self {
        TraceGenerator {
            attention,
            behavior,
            context,
        }
    }

    /// Generate a trace of `duration`, deterministic in `seed`.
    pub fn generate(&self, duration: SimDuration, seed: u64) -> HeadTrace {
        let hz = DEFAULT_SAMPLE_HZ;
        let dt = 1.0 / hz;
        let n = (duration.as_secs_f64() * hz).ceil() as usize + 1;
        let mut rng = SimRng::new(seed).split(0x6E6E_7A7E);

        let b = self.behavior;
        let yaw_limit = self.context.yaw_half_range();
        let max_speed = b.max_speed() * self.context.speed_factor();

        // Start looking at a weighted hotspot.
        let mut target_idx = self.attention.sample(&mut rng);
        let mut wander_target: Option<Orientation> = None;
        let start = self.attention.hotspots()[target_idx].position(0.0);
        let mut yaw = start.yaw.clamp(-yaw_limit, yaw_limit);
        let mut pitch = start.pitch;
        let mut noise_yaw = 0.0f64;
        let mut noise_pitch = 0.0f64;

        let mut samples = Vec::with_capacity(n);
        for i in 0..n {
            let t = i as f64 * dt;

            // Poisson saccades: retarget.
            if rng.chance(b.switch_rate() * dt) {
                if rng.chance(b.wander_prob()) {
                    wander_target = Some(Orientation::new(
                        rng.uniform_in(-yaw_limit, yaw_limit),
                        rng.normal(0.0, 0.25),
                        0.0,
                    ));
                } else {
                    wander_target = None;
                    target_idx = self.attention.sample(&mut rng);
                }
            }

            let target = match (b, wander_target) {
                (Behavior::Follower, _) => self.attention.hotspots()[0].position(t),
                (_, Some(w)) => w,
                (_, None) => self.attention.hotspots()[target_idx].position(t),
            };

            // Pursue the target (shortest yaw arc), rate-limited.
            let gain = b.pursuit_gain();
            let mut dyaw = wrap_pi(target.yaw - yaw) * gain * dt;
            let mut dpitch = (target.pitch - pitch) * gain * dt;
            let step = (dyaw * dyaw + dpitch * dpitch).sqrt();
            let max_step = max_speed * dt;
            if step > max_step {
                let s = max_step / step;
                dyaw *= s;
                dpitch *= s;
            }
            yaw += dyaw;
            pitch += dpitch;

            // OU noise (mean-reverting jitter).
            let theta = 5.0;
            noise_yaw +=
                -theta * noise_yaw * dt + b.noise() * rng.gaussian() * dt.sqrt() * theta.sqrt();
            noise_pitch +=
                -theta * noise_pitch * dt + b.noise() * rng.gaussian() * dt.sqrt() * theta.sqrt();

            // Context: soft-limit yaw around the session front (yaw 0).
            if self.context.pose != Pose::Standing {
                yaw = yaw.clamp(-yaw_limit, yaw_limit);
            }
            pitch = pitch.clamp(-1.4, 1.4);

            samples.push(Orientation::new(yaw + noise_yaw, pitch + noise_pitch, 0.0));
        }

        let mut trace = HeadTrace::new(hz, samples);
        trace.context = self.context;
        trace
    }
}

/// Generate an ensemble of traces for `users` viewers of the same video,
/// cycling through behaviour classes; deterministic in `seed`.
pub fn generate_ensemble(
    attention: &AttentionModel,
    users: usize,
    duration: SimDuration,
    seed: u64,
) -> Vec<HeadTrace> {
    (0..users)
        .map(|u| generate_ensemble_member(attention, u, duration, seed))
        .collect()
}

/// Generate just member `u` of the ensemble [`generate_ensemble`] would
/// produce — bit-identical to `generate_ensemble(attention, n, duration,
/// seed)[u]` for any `n > u`, at the cost of one trace instead of `n`.
/// Each member draws from its own seed-split RNG, so skipping the
/// earlier members consumes nothing they would have consumed.
pub fn generate_ensemble_member(
    attention: &AttentionModel,
    u: usize,
    duration: SimDuration,
    seed: u64,
) -> HeadTrace {
    let behavior = Behavior::ALL[u % Behavior::ALL.len()];
    let gen = TraceGenerator::new(attention.clone(), behavior, ViewingContext::default());
    let mut tr = gen.generate(duration, seed.wrapping_add(u as u64 * 0x9E37));
    tr.user_id = u as u64;
    tr
}

#[cfg(test)]
mod tests {
    use super::*;
    use sperke_sim::SimTime;

    fn gen(behavior: Behavior) -> HeadTrace {
        let att = AttentionModel::generic(1);
        TraceGenerator::new(att, behavior, ViewingContext::default())
            .generate(SimDuration::from_secs(30), 99)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen(Behavior::Focused);
        let b = gen(Behavior::Focused);
        assert_eq!(a.samples(), b.samples());
    }

    #[test]
    fn different_seeds_differ() {
        let att = AttentionModel::generic(1);
        let g = TraceGenerator::new(att, Behavior::Focused, ViewingContext::default());
        let a = g.generate(SimDuration::from_secs(10), 1);
        let b = g.generate(SimDuration::from_secs(10), 2);
        assert_ne!(a.samples(), b.samples());
    }

    #[test]
    fn still_viewer_moves_less_than_explorer() {
        let still = gen(Behavior::Still);
        let explorer = gen(Behavior::Explorer);
        assert!(
            still.speed_percentile(90.0) < explorer.speed_percentile(90.0),
            "still {} vs explorer {}",
            still.speed_percentile(90.0),
            explorer.speed_percentile(90.0)
        );
    }

    #[test]
    fn speeds_respect_rate_limit() {
        for b in Behavior::ALL {
            let tr = gen(b);
            // The pursuit component is hard-limited at max_speed; the OU
            // jitter rides on top, so allow generous slack at the peak
            // but verify the bulk (p90) respects the class ordering.
            let vmax = tr.speed_percentile(100.0);
            assert!(vmax < 2.0 * b.max_speed() + 2.0, "{b:?} peaked at {vmax}");
            assert!(
                tr.speed_percentile(50.0) < b.max_speed() + 0.5,
                "{b:?} median too fast"
            );
        }
    }

    #[test]
    fn follower_tracks_moving_hotspot() {
        let att = AttentionModel::sports(3);
        let tr = TraceGenerator::new(
            att.clone(),
            Behavior::Follower,
            ViewingContext {
                pose: Pose::Standing,
                ..Default::default()
            },
        )
        .generate(SimDuration::from_secs(20), 5);
        // At t=15 the dominant hotspot has swept far from yaw 0; the
        // follower should be near it.
        let t = 15.0;
        let hotspot = att.hotspots()[0].position(t);
        let gaze = tr.at(SimTime::from_secs_f64(t));
        assert!(
            gaze.angular_distance(&hotspot) < 0.6,
            "follower {:.2} rad away from target",
            gaze.angular_distance(&hotspot)
        );
    }

    #[test]
    fn lying_viewer_never_looks_behind() {
        let att = AttentionModel::generic(7);
        let ctx = ViewingContext {
            pose: Pose::Lying,
            ..Default::default()
        };
        let tr = TraceGenerator::new(att, Behavior::Explorer, ctx)
            .generate(SimDuration::from_secs(60), 11);
        for o in tr.samples() {
            assert!(
                o.yaw.abs() < 100f64.to_radians(),
                "lying viewer reached yaw {}",
                o.yaw.to_degrees()
            );
        }
    }

    #[test]
    fn ensemble_shares_hotspots() {
        // Focused/follower viewers of a stage video should cluster around
        // the stage hotspot: cross-user yaw spread is bounded.
        let att = AttentionModel::stage(13);
        let traces = generate_ensemble(&att, 8, SimDuration::from_secs(20), 42);
        assert_eq!(traces.len(), 8);
        let stage_yaw = att.hotspots()[0].yaw0;
        let mut near = 0;
        for tr in &traces {
            let gaze = tr.at(SimTime::from_secs(10));
            if wrap_pi(gaze.yaw - stage_yaw).abs() < 1.0 {
                near += 1;
            }
        }
        assert!(near >= 5, "only {near}/8 viewers near the stage");
    }

    #[test]
    fn ensemble_user_ids_assigned() {
        let att = AttentionModel::generic(1);
        let traces = generate_ensemble(&att, 3, SimDuration::from_secs(2), 1);
        assert_eq!(
            traces.iter().map(|t| t.user_id).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn ensemble_member_matches_full_ensemble() {
        let att = AttentionModel::sports(21);
        let full = generate_ensemble(&att, 5, SimDuration::from_secs(8), 917);
        for (u, expect) in full.iter().enumerate() {
            let solo = generate_ensemble_member(&att, u, SimDuration::from_secs(8), 917);
            assert_eq!(solo.user_id, expect.user_id);
            assert_eq!(solo.samples(), expect.samples(), "member {u} diverged");
        }
    }

    #[test]
    #[should_panic]
    fn empty_attention_rejected() {
        AttentionModel::new(vec![]);
    }
}
