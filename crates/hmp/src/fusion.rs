//! The "data fusion" forecaster (§3.2): motion extrapolation blended
//! with the cross-user popularity prior, pruned by the per-user speed
//! bound and the viewing context.
//!
//! Downstream consumers (rate adaptation, multipath, prefetching) don't
//! want a single predicted orientation — they want, per tile, the
//! probability that the tile will be on screen at a future chunk time.
//! That is a [`TileForecast`].

use crate::context::ViewingContext;
use crate::popularity::Heatmap;
use crate::predictor::{DampedRegression, Predictor};
use serde::{Deserialize, Serialize};
use sperke_geo::{Orientation, TileCenters, TileGrid, TileId, Viewport};
use sperke_sim::{SimDuration, SimTime};
use sperke_video::ChunkTime;

/// Per-tile on-screen probabilities for one future chunk time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TileForecast {
    probs: Vec<f64>,
}

impl TileForecast {
    /// Build from raw per-tile probabilities (clamped to `[0,1]`).
    pub fn new(probs: Vec<f64>) -> TileForecast {
        TileForecast {
            probs: probs.into_iter().map(|p| p.clamp(0.0, 1.0)).collect(),
        }
    }

    /// A uniform forecast (no information).
    pub fn uniform(grid: &TileGrid, p: f64) -> TileForecast {
        TileForecast::new(vec![p; grid.tile_count()])
    }

    /// Probability that `tile` is on screen.
    pub fn prob(&self, tile: TileId) -> f64 {
        self.probs[tile.index()]
    }

    /// Number of tiles.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True when empty (never for grid-built forecasts).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Tiles ranked by descending probability (ties by id).
    pub fn ranked(&self) -> Vec<(TileId, f64)> {
        let mut v: Vec<(TileId, f64)> = self
            .probs
            .iter()
            .enumerate()
            .map(|(i, &p)| (TileId(i as u16), p))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN").then(a.0.cmp(&b.0)));
        v
    }

    /// The `k` most probable tiles.
    pub fn top_k(&self, k: usize) -> Vec<TileId> {
        self.ranked().into_iter().take(k).map(|(t, _)| t).collect()
    }

    /// Tiles with probability at least `threshold`.
    pub fn above(&self, threshold: f64) -> Vec<TileId> {
        self.ranked()
            .into_iter()
            .filter(|&(_, p)| p >= threshold)
            .map(|(t, _)| t)
            .collect()
    }

    /// How concentrated the forecast is, in `[0, 1]`: the probability
    /// mass held by the top eighth of tiles (at least one) over the
    /// total mass. A confident prediction piles its mass on the few
    /// tiles of one viewport (→ 1); a diffuse one spreads it across the
    /// panorama (→ the mass fraction those tiles would hold anyway).
    /// Returns 0 for an empty or all-zero forecast. Drives
    /// confidence-transitioning delivery policies.
    pub fn confidence(&self) -> f64 {
        if self.probs.is_empty() {
            return 0.0;
        }
        let total: f64 = self.probs.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        let k = self.probs.len().div_ceil(8);
        let top: f64 = self.ranked().iter().take(k).map(|&(_, p)| p).sum();
        (top / total).clamp(0.0, 1.0)
    }
}

/// Tuning for the fused forecaster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FusionConfig {
    /// Below this horizon, trust motion extrapolation alone.
    pub short_horizon: SimDuration,
    /// At/beyond this horizon the popularity prior reaches its maximum
    /// blend weight.
    pub long_horizon: SimDuration,
    /// Maximum weight the popularity prior can take (< 1 keeps motion in
    /// the mix even at long horizons).
    pub max_prior_weight: f64,
    /// Gaussian growth of motion uncertainty with horizon, rad/s.
    pub uncertainty_rate: f64,
    /// Ceiling on the motion uncertainty (head-prediction error
    /// saturates — viewers revert to content, they don't random-walk).
    pub uncertainty_cap: f64,
    /// Floor probability applied instead of zero when pruning
    /// (robustness against hard errors).
    pub prune_floor: f64,
}

impl Default for FusionConfig {
    fn default() -> Self {
        FusionConfig {
            short_horizon: SimDuration::from_millis(500),
            long_horizon: SimDuration::from_secs(2),
            max_prior_weight: 0.7,
            uncertainty_rate: 0.35,
            uncertainty_cap: 0.85,
            prune_floor: 0.05,
        }
    }
}

/// Anything that can forecast per-tile on-screen probabilities.
///
/// [`FusedForecaster`] is the production implementation;
/// [`OracleForecaster`](crate::oracle::OracleForecaster) peeks at the
/// future for perfect-HMP upper bounds (§3.1.2 part one: "let us assume
/// that the HMP is perfect").
pub trait Forecaster {
    /// Forecast on-screen probabilities for the chunk starting at
    /// `target_time`, given gaze history up to `now`.
    fn forecast(
        &self,
        grid: &TileGrid,
        history: &[(SimTime, Orientation)],
        now: SimTime,
        target_time: SimTime,
        chunk_time: ChunkTime,
    ) -> TileForecast;
}

/// The fused §3.2 forecaster.
#[derive(Debug, Clone)]
pub struct FusedForecaster {
    /// Motion predictor (damped regression by default).
    pub motion: DampedRegression,
    /// Cross-user popularity prior, when available.
    pub heatmap: Option<Heatmap>,
    /// Learned per-user speed bound (rad/s), e.g. the user's historical
    /// 95th-percentile head speed.
    pub speed_bound: Option<f64>,
    /// Session context for reachability pruning.
    pub context: ViewingContext,
    /// The session's "front" yaw (radians) against which context limits
    /// apply; normally the initial gaze direction.
    pub front_yaw: f64,
    /// Tuning.
    pub config: FusionConfig,
}

impl FusedForecaster {
    /// A purely motion-driven forecaster (no prior, no pruning).
    pub fn motion_only() -> FusedForecaster {
        FusedForecaster {
            motion: DampedRegression::default(),
            heatmap: None,
            speed_bound: None,
            context: ViewingContext {
                pose: crate::context::Pose::Standing,
                ..Default::default()
            },
            front_yaw: 0.0,
            config: FusionConfig::default(),
        }
    }

    /// Attach a popularity heatmap.
    pub fn with_heatmap(mut self, heatmap: Heatmap) -> Self {
        self.heatmap = Some(heatmap);
        self
    }

    /// Attach a learned speed bound (rad/s).
    pub fn with_speed_bound(mut self, bound: f64) -> Self {
        assert!(bound > 0.0);
        self.speed_bound = Some(bound);
        self
    }

    /// Attach a viewing context and session front.
    pub fn with_context(mut self, context: ViewingContext, front_yaw: f64) -> Self {
        self.context = context;
        self.front_yaw = front_yaw;
        self
    }

    /// Forecast on-screen probabilities for the chunk starting at
    /// `target_time`, given gaze history up to `now`.
    pub fn forecast(
        &self,
        grid: &TileGrid,
        history: &[(SimTime, Orientation)],
        now: SimTime,
        target_time: SimTime,
        chunk_time: ChunkTime,
    ) -> TileForecast {
        Forecaster::forecast(self, grid, history, now, target_time, chunk_time)
    }
}

impl Forecaster for FusedForecaster {
    fn forecast(
        &self,
        grid: &TileGrid,
        history: &[(SimTime, Orientation)],
        now: SimTime,
        target_time: SimTime,
        chunk_time: ChunkTime,
    ) -> TileForecast {
        assert!(!history.is_empty(), "history must be non-empty");
        let horizon = target_time.saturating_since(now);
        let current = history.last().expect("non-empty").1;
        let predicted = self.motion.predict(history, horizon);

        // --- Motion component: FoV membership blurred by horizon noise.
        let vp = Viewport::headset(predicted);
        let fov_radius = (vp.hfov.min(vp.vfov)) / 2.0;
        let sigma = (0.12 + self.config.uncertainty_rate * horizon.as_secs_f64())
            .min(self.config.uncertainty_cap.max(0.12));
        let motion_probs: Vec<f64> = grid
            .tiles()
            .map(|tile| {
                let d = grid.distance_to_tile(predicted.direction(), tile);
                let outside = (d - fov_radius).max(0.0);
                (-0.5 * (outside / sigma).powi(2)).exp()
            })
            .collect();

        // --- Popularity component, combined as a noisy-OR: the tile is
        // on screen if motion predicts it OR the crowd watches it. This
        // lifts popular tiles at long horizons without ever *displacing*
        // the viewer's own motion evidence (a convex blend would dilute
        // a certain motion prediction down to the crowd average).
        let w = self.prior_weight(horizon);
        let mut probs: Vec<f64> = if let (Some(map), true) = (&self.heatmap, w > 0.0) {
            grid.tiles()
                .map(|tile| {
                    let pop = map.tile_probability(chunk_time, tile);
                    let m = motion_probs[tile.index()];
                    1.0 - (1.0 - m) * (1.0 - w * pop)
                })
                .collect()
        } else {
            motion_probs
        };

        // --- Speed-bound pruning: tiles unreachable within the horizon.
        if let Some(bound) = self.speed_bound {
            let reach = bound * horizon.as_secs_f64() + fov_radius;
            for tile in grid.tiles() {
                let d = grid.distance_to_tile(current.direction(), tile);
                if d > reach {
                    probs[tile.index()] = probs[tile.index()].min(self.config.prune_floor);
                }
            }
        }

        // --- Context pruning: tiles no reachable gaze could *see*. The
        // pose limits where the gaze can point; the viewport extends a
        // further FoV half-width beyond the gaze, so the visibility
        // limit is the pose range plus that margin (a viewer pinned at
        // the limit still sees past it).
        for tile in grid.tiles() {
            let center = grid.tile_center(tile);
            let yaw = center.y.atan2(center.x);
            let offset = sperke_geo::angles::wrap_pi(yaw - self.front_yaw).abs();
            if offset > self.context.yaw_half_range() + fov_radius {
                probs[tile.index()] = probs[tile.index()].min(self.config.prune_floor);
            }
        }

        TileForecast::new(probs)
    }
}

/// Reusable state for [`FusedForecaster::forecast_with`]: the
/// tile-centre table (the trig-heavy part of tile scoring) and the
/// motion-probability buffer. One scratch serves any grid — the table is
/// rebuilt when the grid changes — so a batch engine keeps one per
/// worker and amortizes the trig across every (client, chunk) query.
#[derive(Debug, Clone, Default)]
pub struct ForecastScratch {
    centers: Option<TileCenters>,
    motion: Vec<f64>,
}

impl ForecastScratch {
    /// An empty scratch; the centre table builds on first use.
    pub fn new() -> ForecastScratch {
        ForecastScratch::default()
    }

    fn ensure(&mut self, grid: &TileGrid) {
        if self.centers.as_ref().map(|c| c.grid()) != Some(*grid) {
            self.centers = Some(TileCenters::new(*grid));
        }
    }
}

impl FusedForecaster {
    /// Scratch-backed form of [`FusedForecaster::forecast`]: identical
    /// output bits, computed cheaper.
    ///
    /// * Tile centres come from the scratch's [`TileCenters`] table
    ///   instead of four trig calls per query, and the predicted/current
    ///   gaze directions are derived once instead of once per tile —
    ///   both produce the exact f64s the per-tile path produces inline.
    /// * The context-prune pass is skipped entirely when the pose's yaw
    ///   range plus the FoV half-width reaches π: a wrapped yaw offset
    ///   never exceeds π, so the prune condition `offset > limit` is
    ///   unsatisfiable and the pass is a no-op.
    pub fn forecast_with(
        &self,
        grid: &TileGrid,
        history: &[(SimTime, Orientation)],
        now: SimTime,
        target_time: SimTime,
        chunk_time: ChunkTime,
        scratch: &mut ForecastScratch,
    ) -> TileForecast {
        assert!(!history.is_empty(), "history must be non-empty");
        scratch.ensure(grid);
        let ForecastScratch { centers, motion } = scratch;
        let centers = centers.as_ref().expect("ensured above");
        let horizon = target_time.saturating_since(now);
        let current = history.last().expect("non-empty").1;
        let predicted = self.motion.predict(history, horizon);

        let vp = Viewport::headset(predicted);
        let fov_radius = (vp.hfov.min(vp.vfov)) / 2.0;
        let sigma = (0.12 + self.config.uncertainty_rate * horizon.as_secs_f64())
            .min(self.config.uncertainty_cap.max(0.12));
        let predicted_dir = predicted.direction();
        motion.clear();
        motion.extend(grid.tiles().map(|tile| {
            let d = centers.distance_to_tile(predicted_dir, tile);
            let outside = (d - fov_radius).max(0.0);
            (-0.5 * (outside / sigma).powi(2)).exp()
        }));

        let w = self.prior_weight(horizon);
        let mut probs: Vec<f64> = if let (Some(map), true) = (&self.heatmap, w > 0.0) {
            grid.tiles()
                .map(|tile| {
                    let pop = map.tile_probability(chunk_time, tile);
                    let m = motion[tile.index()];
                    1.0 - (1.0 - m) * (1.0 - w * pop)
                })
                .collect()
        } else {
            motion.clone()
        };

        if let Some(bound) = self.speed_bound {
            let reach = bound * horizon.as_secs_f64() + fov_radius;
            let current_dir = current.direction();
            for tile in grid.tiles() {
                let d = centers.distance_to_tile(current_dir, tile);
                if d > reach {
                    probs[tile.index()] = probs[tile.index()].min(self.config.prune_floor);
                }
            }
        }

        let limit = self.context.yaw_half_range() + fov_radius;
        if limit < std::f64::consts::PI {
            for tile in grid.tiles() {
                let center = centers.center(tile);
                let yaw = center.y.atan2(center.x);
                let offset = sperke_geo::angles::wrap_pi(yaw - self.front_yaw).abs();
                if offset > limit {
                    probs[tile.index()] = probs[tile.index()].min(self.config.prune_floor);
                }
            }
        }

        TileForecast::new(probs)
    }

    /// The popularity prior's blend weight at a horizon.
    pub fn prior_weight(&self, horizon: SimDuration) -> f64 {
        if self.heatmap.is_none() {
            return 0.0;
        }
        let short = self.config.short_horizon.as_secs_f64();
        let long = self.config.long_horizon.as_secs_f64();
        let h = horizon.as_secs_f64();
        if h <= short {
            0.0
        } else if h >= long {
            self.config.max_prior_weight
        } else {
            self.config.max_prior_weight * (h - short) / (long - short)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Pose;
    use crate::generate::{generate_ensemble, AttentionModel};
    use crate::popularity::Heatmap;
    use crate::trace::HeadTrace;
    use sperke_geo::Vec3;

    fn still_history(yaw_deg: f64) -> Vec<(SimTime, Orientation)> {
        (0..25)
            .map(|i| {
                (
                    SimTime::from_secs_f64(i as f64 * 0.02),
                    Orientation::from_degrees(yaw_deg, 0.0, 0.0),
                )
            })
            .collect()
    }

    #[test]
    fn forecast_peaks_at_gaze_for_still_viewer() {
        let grid = TileGrid::new(4, 6);
        let f = FusedForecaster::motion_only();
        let h = still_history(0.0);
        let now = h.last().unwrap().0;
        let fc = f.forecast(
            &grid,
            &h,
            now,
            now + SimDuration::from_millis(500),
            ChunkTime(0),
        );
        let front = grid.tile_of_direction(Vec3::X);
        let behind = grid.tile_of_direction(-Vec3::X);
        assert!(fc.prob(front) > 0.95);
        assert!(fc.prob(behind) < 0.3, "behind={}", fc.prob(behind));
    }

    #[test]
    fn uncertainty_spreads_with_horizon() {
        let grid = TileGrid::new(4, 6);
        let f = FusedForecaster::motion_only();
        let h = still_history(0.0);
        let now = h.last().unwrap().0;
        let behind = grid.tile_of_direction(-Vec3::X);
        let near = f.forecast(
            &grid,
            &h,
            now,
            now + SimDuration::from_millis(200),
            ChunkTime(0),
        );
        let far = f.forecast(
            &grid,
            &h,
            now,
            now + SimDuration::from_secs(3),
            ChunkTime(0),
        );
        assert!(far.prob(behind) > near.prob(behind));
    }

    #[test]
    fn prior_weight_ramps() {
        let grid = TileGrid::new(2, 4);
        let map = Heatmap::empty(grid, SimDuration::from_secs(1), 1);
        let f = FusedForecaster::motion_only().with_heatmap(map);
        assert_eq!(f.prior_weight(SimDuration::from_millis(100)), 0.0);
        let mid = f.prior_weight(SimDuration::from_millis(1250));
        assert!(mid > 0.0 && mid < 0.7);
        assert_eq!(f.prior_weight(SimDuration::from_secs(5)), 0.7);
    }

    #[test]
    fn no_heatmap_means_zero_prior_weight() {
        let f = FusedForecaster::motion_only();
        assert_eq!(f.prior_weight(SimDuration::from_secs(10)), 0.0);
    }

    #[test]
    fn heatmap_lifts_popular_tiles_at_long_horizon() {
        let grid = TileGrid::new(4, 6);
        // Everyone else looks behind (yaw 180) — the popularity prior
        // should raise that tile at long horizons even though our user
        // currently looks front.
        let traces: Vec<HeadTrace> = (0..6)
            .map(|_| {
                HeadTrace::from_fn(SimDuration::from_secs(4), |_| {
                    Orientation::from_degrees(180.0, 0.0, 0.0)
                })
            })
            .collect();
        let map = Heatmap::build(grid, SimDuration::from_secs(1), 4, &traces);
        let with = FusedForecaster::motion_only().with_heatmap(map);
        let without = FusedForecaster::motion_only();
        let h = still_history(0.0);
        let now = h.last().unwrap().0;
        let target = now + SimDuration::from_secs(3);
        let behind = grid.tile_of_direction(-Vec3::X);
        let pw = with
            .forecast(&grid, &h, now, target, ChunkTime(3))
            .prob(behind);
        let po = without
            .forecast(&grid, &h, now, target, ChunkTime(3))
            .prob(behind);
        assert!(pw > po, "prior must lift the popular tile: {pw} vs {po}");
        assert!(pw > 0.5);
    }

    #[test]
    fn speed_bound_prunes_distant_tiles() {
        let grid = TileGrid::new(4, 6);
        let f = FusedForecaster::motion_only().with_speed_bound(0.2); // slow user
        let h = still_history(0.0);
        let now = h.last().unwrap().0;
        // Long horizon would otherwise blur probability everywhere.
        let fc = f.forecast(
            &grid,
            &h,
            now,
            now + SimDuration::from_secs(4),
            ChunkTime(0),
        );
        let behind = grid.tile_of_direction(-Vec3::X);
        assert!(fc.prob(behind) <= 0.05 + 1e-12);
    }

    #[test]
    fn lying_context_prunes_rear_tiles() {
        let grid = TileGrid::new(4, 6);
        let ctx = ViewingContext {
            pose: Pose::Lying,
            ..Default::default()
        };
        let f = FusedForecaster::motion_only().with_context(ctx, 0.0);
        let h = still_history(0.0);
        let now = h.last().unwrap().0;
        let fc = f.forecast(
            &grid,
            &h,
            now,
            now + SimDuration::from_secs(3),
            ChunkTime(0),
        );
        let behind = grid.tile_of_direction(-Vec3::X);
        let front = grid.tile_of_direction(Vec3::X);
        assert!(fc.prob(behind) <= 0.05 + 1e-12);
        assert!(fc.prob(front) > 0.9);
    }

    #[test]
    fn moving_viewer_shifts_forecast_ahead() {
        let grid = TileGrid::new(1, 12); // fine yaw resolution
        let f = FusedForecaster::motion_only();
        // Turning left at 1 rad/s.
        let h: Vec<(SimTime, Orientation)> = (0..50)
            .map(|i| {
                let t = i as f64 * 0.02;
                (SimTime::from_secs_f64(t), Orientation::new(t, 0.0, 0.0))
            })
            .collect();
        let now = h.last().unwrap().0;
        let fc = f.forecast(
            &grid,
            &h,
            now,
            now + SimDuration::from_secs(1),
            ChunkTime(1),
        );
        let current_tile = grid.tile_of_direction(h.last().unwrap().1.direction());
        // Expected gaze after damped 1s of 1 rad/s ≈ +0.7 rad ahead.
        let ahead_tile = grid.tile_of_angles(h.last().unwrap().1.yaw + 0.7, 0.0);
        assert!(fc.prob(ahead_tile) >= fc.prob(current_tile) * 0.9);
        // The tile 180° away must be far less likely than the path ahead.
        let opposite = grid.tile_of_angles(h.last().unwrap().1.yaw + std::f64::consts::PI, 0.0);
        assert!(fc.prob(opposite) < fc.prob(ahead_tile));
    }

    #[test]
    fn forecast_ranked_and_topk_consistent() {
        let grid = TileGrid::new(4, 6);
        let f = FusedForecaster::motion_only();
        let h = still_history(40.0);
        let now = h.last().unwrap().0;
        let fc = f.forecast(
            &grid,
            &h,
            now,
            now + SimDuration::from_millis(300),
            ChunkTime(0),
        );
        let ranked = fc.ranked();
        assert_eq!(ranked.len(), grid.tile_count());
        assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1));
        assert_eq!(
            fc.top_k(3),
            ranked[..3].iter().map(|&(t, _)| t).collect::<Vec<_>>()
        );
        let above = fc.above(0.5);
        assert!(above.iter().all(|&t| fc.prob(t) >= 0.5));
    }

    #[test]
    fn forecast_with_scratch_is_bit_identical() {
        let grid = TileGrid::new(4, 6);
        let traces: Vec<HeadTrace> = (0..4)
            .map(|i| {
                HeadTrace::from_fn(SimDuration::from_secs(4), move |t| {
                    Orientation::from_degrees(40.0 * i as f64 + 10.0 * t.as_secs_f64(), 5.0, 0.0)
                })
            })
            .collect();
        let map = Heatmap::build(grid, SimDuration::from_secs(1), 4, &traces);
        let lying = ViewingContext {
            pose: Pose::Lying,
            ..Default::default()
        };
        let forecasters = [
            FusedForecaster::motion_only(),
            FusedForecaster::motion_only().with_heatmap(map.clone()),
            FusedForecaster::motion_only().with_speed_bound(0.4),
            FusedForecaster::motion_only().with_context(lying, 0.3),
            FusedForecaster::motion_only()
                .with_heatmap(map)
                .with_speed_bound(1.1)
                .with_context(lying, -0.8),
        ];
        let mut scratch = ForecastScratch::new();
        for (fi, f) in forecasters.iter().enumerate() {
            for yaw in [0.0, 75.0, -160.0] {
                for horizon_ms in [150, 900, 3000] {
                    let h = still_history(yaw);
                    let now = h.last().unwrap().0;
                    let target = now + SimDuration::from_millis(horizon_ms);
                    let slow = f.forecast(&grid, &h, now, target, ChunkTime(2));
                    let fast = f.forecast_with(&grid, &h, now, target, ChunkTime(2), &mut scratch);
                    for tile in grid.tiles() {
                        assert_eq!(
                            fast.prob(tile).to_bits(),
                            slow.prob(tile).to_bits(),
                            "forecaster {fi}, yaw {yaw}, horizon {horizon_ms} ms, tile {tile}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ensemble_prior_boosts_hit_rate_for_slow_viewer() {
        // A viewer about to saccade to the stage: popularity knows where
        // the stage is even though motion extrapolation doesn't.
        let att = AttentionModel::stage(21);
        let traces = generate_ensemble(&att, 10, SimDuration::from_secs(10), 7);
        let grid = TileGrid::new(4, 6);
        let map = Heatmap::build(grid, SimDuration::from_secs(1), 10, &traces);
        let stage_tile = grid.tile_of_direction(att.hotspots()[0].position(5.0).direction());
        // User currently looks 140° away from the stage.
        let stage_yaw = att.hotspots()[0].yaw0;
        let h = still_history(stage_yaw.to_degrees() + 140.0);
        let now = h.last().unwrap().0;
        let target = now + SimDuration::from_secs(3);
        let with = FusedForecaster::motion_only().with_heatmap(map).forecast(
            &grid,
            &h,
            now,
            target,
            ChunkTime(5),
        );
        let without = FusedForecaster::motion_only().forecast(&grid, &h, now, target, ChunkTime(5));
        assert!(with.prob(stage_tile) > without.prob(stage_tile));
    }
}
