//! HMP evaluation harness: prediction error and tile-hit metrics.
//!
//! Backs experiment E5 ("HMP accuracy vs horizon"). The operative metric
//! for FoV-guided streaming is not raw angular error but whether the
//! tiles the predictor would have fetched include the tiles the user
//! actually looked at.

use crate::fusion::FusedForecaster;
use crate::predictor::Predictor;
use crate::trace::HeadTrace;
use serde::{Deserialize, Serialize};
use sperke_geo::{TileGrid, Viewport, VisibilityCache};
use sperke_sim::stats;
use sperke_sim::{SimDuration, SimTime};
use sperke_video::ChunkTime;

/// Evaluation summary for one predictor at one horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HmpReport {
    /// Mean great-circle error, degrees.
    pub mean_error_deg: f64,
    /// 95th-percentile error, degrees.
    pub p95_error_deg: f64,
    /// Fraction of evaluations where the user's actual gaze-centre tile
    /// was inside the *predicted* viewport's tile set.
    pub tile_hit_rate: f64,
    /// Number of evaluation points.
    pub evaluations: usize,
}

/// History window handed to predictors, in samples (1 s at 50 Hz).
const HISTORY_SAMPLES: usize = 50;
/// Evaluation stride along the trace.
const EVAL_STEP: SimDuration = SimDuration::from_millis(100);

/// Evaluate a point predictor over a trace at a fixed horizon.
pub fn evaluate_predictor(
    predictor: &dyn Predictor,
    trace: &HeadTrace,
    horizon: SimDuration,
    grid: &TileGrid,
) -> HmpReport {
    let mut errors = Vec::new();
    let mut hits = 0usize;
    let mut total = 0usize;
    // Predictors emit recurring orientations (still gazes, grid-snapped
    // fits), so the per-step viewport query memoizes well.
    let vis = VisibilityCache::default();

    let start = SimTime::from_secs(1); // warm-up for history
    let end_f = trace.duration().as_secs_f64() - horizon.as_secs_f64();
    let mut t = start;
    while t.as_secs_f64() <= end_f {
        let history = trace.history(t, HISTORY_SAMPLES);
        let predicted = predictor.predict(&history, horizon);
        let actual = trace.at(t + horizon);
        errors.push(predicted.angular_distance(&actual).to_degrees());

        let predicted_tiles = vis.visible_tile_set(&Viewport::headset(predicted), grid);
        let actual_tile = grid.tile_of_direction(actual.direction());
        if predicted_tiles.contains(&actual_tile) {
            hits += 1;
        }
        total += 1;
        t += EVAL_STEP;
    }

    HmpReport {
        mean_error_deg: stats::mean(&errors),
        p95_error_deg: stats::percentile(&errors, 95.0),
        tile_hit_rate: if total > 0 {
            hits as f64 / total as f64
        } else {
            0.0
        },
        evaluations: total,
    }
}

/// Evaluation of a [`FusedForecaster`]'s tile forecasts: with a fetch
/// budget of `k` tiles, how often do the top-k forecast tiles include
/// the user's actual gaze tile?
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForecastReport {
    /// Fraction of evaluations whose actual gaze tile is in the top-k.
    pub topk_hit_rate: f64,
    /// Mean probability the forecast assigned to the actual gaze tile.
    pub mean_prob_on_target: f64,
    /// Number of evaluation points.
    pub evaluations: usize,
}

/// Evaluate a fused forecaster over a trace at a fixed horizon and
/// fetch budget.
pub fn evaluate_forecaster(
    forecaster: &FusedForecaster,
    trace: &HeadTrace,
    horizon: SimDuration,
    grid: &TileGrid,
    chunk_duration: SimDuration,
    k: usize,
) -> ForecastReport {
    let mut hits = 0usize;
    let mut total = 0usize;
    let mut probs = Vec::new();

    let start = SimTime::from_secs(1);
    let end_f = trace.duration().as_secs_f64() - horizon.as_secs_f64();
    let mut t = start;
    while t.as_secs_f64() <= end_f {
        let history = trace.history(t, HISTORY_SAMPLES);
        let target_time = t + horizon;
        let chunk = ChunkTime((target_time.as_nanos() / chunk_duration.as_nanos()) as u32);
        let fc = forecaster.forecast(grid, &history, t, target_time, chunk);
        let actual = trace.at(target_time);
        let actual_tile = grid.tile_of_direction(actual.direction());
        if fc.top_k(k).contains(&actual_tile) {
            hits += 1;
        }
        probs.push(fc.prob(actual_tile));
        total += 1;
        t += EVAL_STEP;
    }

    ForecastReport {
        topk_hit_rate: if total > 0 {
            hits as f64 / total as f64
        } else {
            0.0
        },
        mean_prob_on_target: stats::mean(&probs),
        evaluations: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{AttentionModel, Behavior, TraceGenerator};
    use crate::predictor::{LinearRegression, Persistence};
    use crate::ViewingContext;
    use sperke_geo::Orientation;

    fn realistic_trace(seed: u64) -> HeadTrace {
        TraceGenerator::new(
            AttentionModel::generic(3),
            Behavior::Focused,
            ViewingContext::default(),
        )
        .generate(SimDuration::from_secs(30), seed)
    }

    #[test]
    fn perfect_prediction_on_still_trace() {
        let trace = HeadTrace::from_fn(SimDuration::from_secs(10), |_| {
            Orientation::from_degrees(10.0, 0.0, 0.0)
        });
        let grid = TileGrid::new(4, 6);
        let r = evaluate_predictor(&Persistence, &trace, SimDuration::from_secs(1), &grid);
        assert!(r.mean_error_deg < 1e-9);
        assert_eq!(r.tile_hit_rate, 1.0);
        assert!(r.evaluations > 50);
    }

    #[test]
    fn regression_beats_persistence_on_smooth_motion() {
        let trace = HeadTrace::from_fn(SimDuration::from_secs(20), |t| {
            Orientation::new(0.4 * t.as_secs_f64(), 0.0, 0.0)
        });
        let grid = TileGrid::new(4, 6);
        let h = SimDuration::from_secs(1);
        let lr = evaluate_predictor(&LinearRegression::default(), &trace, h, &grid);
        let pe = evaluate_predictor(&Persistence, &trace, h, &grid);
        assert!(lr.mean_error_deg < pe.mean_error_deg);
        assert!(lr.mean_error_deg < 1.0, "LR should nail constant motion");
        // Persistence is off by horizon * rate ≈ 23°.
        assert!(pe.mean_error_deg > 15.0);
    }

    #[test]
    fn error_grows_with_horizon_on_realistic_trace() {
        let trace = realistic_trace(8);
        let grid = TileGrid::new(4, 6);
        let short = evaluate_predictor(&Persistence, &trace, SimDuration::from_millis(200), &grid);
        let long = evaluate_predictor(&Persistence, &trace, SimDuration::from_secs(2), &grid);
        assert!(long.mean_error_deg >= short.mean_error_deg);
    }

    #[test]
    fn short_horizon_accuracy_is_reasonable() {
        // The §3.2 premise: short-horizon HMP is accurate.
        let trace = realistic_trace(9);
        let grid = TileGrid::new(4, 6);
        let r = evaluate_predictor(
            &LinearRegression::default(),
            &trace,
            SimDuration::from_millis(200),
            &grid,
        );
        assert!(r.tile_hit_rate > 0.9, "hit rate {}", r.tile_hit_rate);
    }

    #[test]
    fn forecaster_topk_hit_improves_with_budget() {
        let trace = realistic_trace(10);
        let grid = TileGrid::new(4, 6);
        let f = FusedForecaster::motion_only();
        let h = SimDuration::from_secs(1);
        let cd = SimDuration::from_secs(1);
        let r4 = evaluate_forecaster(&f, &trace, h, &grid, cd, 4);
        let r12 = evaluate_forecaster(&f, &trace, h, &grid, cd, 12);
        assert!(r12.topk_hit_rate >= r4.topk_hit_rate);
        assert!(r12.topk_hit_rate > 0.8, "12/24 tiles should usually cover");
    }
}
