//! Short-horizon head-movement predictors.
//!
//! Prior studies (§3.2) show that "HMP at a short time scale (hundreds
//! of milliseconds up to two seconds) with a reasonable accuracy can be
//! achieved by learning past head movement readings". These predictors
//! operate on the trailing window of a [`HeadTrace`](crate::HeadTrace)
//! and extrapolate to a horizon.

use sperke_geo::angles::unwrap_angles;
use sperke_geo::Orientation;
use sperke_sim::stats::linear_fit;
use sperke_sim::{SimDuration, SimTime};

/// A point predictor of head orientation.
pub trait Predictor {
    /// Short display name for result tables.
    fn name(&self) -> &'static str;

    /// Predict the orientation `horizon` after the newest history
    /// sample. `history` is ordered oldest-first and non-empty.
    fn predict(&self, history: &[(SimTime, Orientation)], horizon: SimDuration) -> Orientation;
}

/// Persistence: the head stays where it is. The baseline every HMP study
/// compares against; surprisingly strong at sub-second horizons.
#[derive(Debug, Clone, Copy, Default)]
pub struct Persistence;

impl Predictor for Persistence {
    fn name(&self) -> &'static str {
        "persistence"
    }

    fn predict(&self, history: &[(SimTime, Orientation)], _horizon: SimDuration) -> Orientation {
        history.last().expect("non-empty history").1
    }
}

/// Ordinary least squares on the recent window, extrapolated linearly
/// (yaw unwrapped before fitting so ±180° crossings don't corrupt the
/// slope). This is the "learning past head movement readings" approach
/// of [16, 37] cited in §3.2.
#[derive(Debug, Clone, Copy)]
pub struct LinearRegression {
    /// Number of trailing samples to fit (≥ 2).
    pub window: usize,
}

impl Default for LinearRegression {
    fn default() -> Self {
        // 0.5 s at 50 Hz.
        LinearRegression { window: 25 }
    }
}

impl Predictor for LinearRegression {
    fn name(&self) -> &'static str {
        "linear-regression"
    }

    fn predict(&self, history: &[(SimTime, Orientation)], horizon: SimDuration) -> Orientation {
        let n = history.len().min(self.window.max(2));
        let tail = &history[history.len() - n..];
        if tail.len() < 2 {
            return tail.last().expect("non-empty").1;
        }
        let t_end = tail.last().expect("non-empty").0.as_secs_f64();
        let xs: Vec<f64> = tail.iter().map(|&(t, _)| t.as_secs_f64() - t_end).collect();
        let yaws_raw: Vec<f64> = tail.iter().map(|&(_, o)| o.yaw).collect();
        let yaws = unwrap_angles(&yaws_raw);
        let pitches: Vec<f64> = tail.iter().map(|&(_, o)| o.pitch).collect();
        let (ya, yb) = linear_fit(&xs, &yaws);
        let (pa, pb) = linear_fit(&xs, &pitches);
        let h = horizon.as_secs_f64();
        Orientation::new(
            ya + yb * h,
            pa + pb * h,
            tail.last().expect("non-empty").1.roll,
        )
    }
}

/// Dead reckoning: constant angular velocity estimated from the last two
/// samples. More reactive but noisier than regression.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeadReckoning;

impl Predictor for DeadReckoning {
    fn name(&self) -> &'static str {
        "dead-reckoning"
    }

    fn predict(&self, history: &[(SimTime, Orientation)], horizon: SimDuration) -> Orientation {
        if history.len() < 2 {
            return history.last().expect("non-empty").1;
        }
        let (t0, a) = history[history.len() - 2];
        let (t1, b) = history[history.len() - 1];
        let dt = (t1 - t0).as_secs_f64();
        if dt <= 0.0 {
            return b;
        }
        let h = horizon.as_secs_f64();
        let dyaw = sperke_geo::angles::wrap_pi(b.yaw - a.yaw) / dt;
        let dpitch = (b.pitch - a.pitch) / dt;
        Orientation::new(b.yaw + dyaw * h, b.pitch + dpitch * h, b.roll)
    }
}

/// A velocity-damped regression: linear regression whose extrapolation
/// is attenuated with the horizon, reflecting that human head motion
/// decelerates (saccades are short). Works better than raw LR at 1–2 s.
#[derive(Debug, Clone, Copy)]
pub struct DampedRegression {
    /// Fitting window in samples.
    pub window: usize,
    /// Horizon (seconds) at which extrapolated velocity halves.
    pub half_life: f64,
}

impl Default for DampedRegression {
    fn default() -> Self {
        DampedRegression {
            window: 25,
            half_life: 0.7,
        }
    }
}

impl Predictor for DampedRegression {
    fn name(&self) -> &'static str {
        "damped-regression"
    }

    fn predict(&self, history: &[(SimTime, Orientation)], horizon: SimDuration) -> Orientation {
        let lr = LinearRegression {
            window: self.window,
        };
        let now = history.last().expect("non-empty").1;
        let raw = lr.predict(history, horizon);
        // Damp the *displacement* rather than the endpoint: integrate an
        // exponentially decaying velocity over the horizon.
        let h = horizon.as_secs_f64();
        let lambda = std::f64::consts::LN_2 / self.half_life;
        let effective = (1.0 - (-lambda * h).exp()) / lambda; // ∫ e^-λt dt
        let scale = if h > 0.0 { effective / h } else { 1.0 };
        let dyaw = sperke_geo::angles::wrap_pi(raw.yaw - now.yaw) * scale;
        let dpitch = (raw.pitch - now.pitch) * scale;
        Orientation::new(now.yaw + dyaw, now.pitch + dpitch, now.roll)
    }
}

/// An alpha-beta filter (steady-state Kalman): tracks position and
/// velocity with fixed gains, smoothing sensor noise better than raw
/// dead reckoning while staying more reactive than a long regression
/// window.
#[derive(Debug, Clone, Copy)]
pub struct AlphaBeta {
    /// Position correction gain, in `(0, 1]`.
    pub alpha: f64,
    /// Velocity correction gain, in `(0, 1]`.
    pub beta: f64,
}

impl Default for AlphaBeta {
    fn default() -> Self {
        AlphaBeta {
            alpha: 0.5,
            beta: 0.1,
        }
    }
}

impl Predictor for AlphaBeta {
    fn name(&self) -> &'static str {
        "alpha-beta"
    }

    fn predict(&self, history: &[(SimTime, Orientation)], horizon: SimDuration) -> Orientation {
        let mut it = history.iter();
        let Some(&(t0, o0)) = it.next() else {
            panic!("history must be non-empty");
        };
        // Run the filter over the window (yaw unwrapped incrementally).
        let mut yaw = o0.yaw;
        let mut pitch = o0.pitch;
        let mut vyaw = 0.0f64;
        let mut vpitch = 0.0f64;
        let mut last_t = t0;
        for &(t, o) in it {
            let dt = (t - last_t).as_secs_f64();
            if dt <= 0.0 {
                continue;
            }
            // Predict.
            let pred_yaw = yaw + vyaw * dt;
            let pred_pitch = pitch + vpitch * dt;
            // Measure (take the short way around for yaw).
            let meas_yaw = pred_yaw + sperke_geo::angles::wrap_pi(o.yaw - pred_yaw);
            let ry = meas_yaw - pred_yaw;
            let rp = o.pitch - pred_pitch;
            yaw = pred_yaw + self.alpha * ry;
            pitch = pred_pitch + self.alpha * rp;
            vyaw += self.beta * ry / dt;
            vpitch += self.beta * rp / dt;
            last_t = t;
        }
        let h = horizon.as_secs_f64();
        Orientation::new(yaw + vyaw * h, pitch + vpitch * h, 0.0)
    }
}

/// An online ensemble: runs several predictors and follows the one with
/// the lowest recent *backtest* error on the supplied history (the last
/// third of the window is used as a holdout).
pub struct Ensemble {
    members: Vec<Box<dyn Predictor>>,
}

impl Ensemble {
    /// The default ensemble: persistence, damped regression, alpha-beta.
    pub fn standard() -> Ensemble {
        Ensemble {
            members: vec![
                Box::new(Persistence),
                Box::new(DampedRegression::default()),
                Box::new(AlphaBeta::default()),
            ],
        }
    }

    /// Build from explicit members (at least one).
    pub fn new(members: Vec<Box<dyn Predictor>>) -> Ensemble {
        assert!(!members.is_empty(), "ensemble needs members");
        Ensemble { members }
    }
}

impl Predictor for Ensemble {
    fn name(&self) -> &'static str {
        "ensemble"
    }

    fn predict(&self, history: &[(SimTime, Orientation)], horizon: SimDuration) -> Orientation {
        if history.len() < 6 {
            return self.members[0].predict(history, horizon);
        }
        // Backtest: predict the last sample from the first two-thirds.
        let split = history.len() * 2 / 3;
        let (train, holdout) = history.split_at(split);
        let target = holdout.last().expect("non-empty holdout");
        let gap = target.0 - train.last().expect("non-empty train").0;
        let mut best = (f64::INFINITY, 0usize);
        for (i, m) in self.members.iter().enumerate() {
            let p = m.predict(train, gap);
            let err = p.angular_distance(&target.1);
            if err < best.0 {
                best = (err, i);
            }
        }
        self.members[best.1].predict(history, horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history_linear(rate: f64, n: usize) -> Vec<(SimTime, Orientation)> {
        (0..n)
            .map(|i| {
                let t = i as f64 * 0.02;
                (
                    SimTime::from_secs_f64(t),
                    Orientation::new(rate * t, 0.1 * t, 0.0),
                )
            })
            .collect()
    }

    #[test]
    fn persistence_returns_last() {
        let h = history_linear(1.0, 10);
        let p = Persistence.predict(&h, SimDuration::from_secs(1));
        assert_eq!(p, h.last().unwrap().1);
    }

    #[test]
    fn regression_extrapolates_linear_motion_exactly() {
        let h = history_linear(0.8, 50);
        let horizon = SimDuration::from_millis(500);
        let p = LinearRegression::default().predict(&h, horizon);
        let t_pred = h.last().unwrap().0.as_secs_f64() + 0.5;
        assert!((p.yaw - 0.8 * t_pred).abs() < 1e-6, "yaw {}", p.yaw);
        assert!((p.pitch - 0.1 * t_pred).abs() < 1e-6);
    }

    #[test]
    fn regression_handles_wraparound_motion() {
        // Yaw crossing +π: raw samples jump to -π side.
        let h: Vec<(SimTime, Orientation)> = (0..50)
            .map(|i| {
                let t = i as f64 * 0.02;
                (
                    SimTime::from_secs_f64(t),
                    Orientation::new(3.0 + 0.5 * t, 0.0, 0.0), // wraps at π≈3.14
                )
            })
            .collect();
        let p = LinearRegression::default().predict(&h, SimDuration::from_millis(200));
        let expect = sperke_geo::angles::wrap_pi(3.0 + 0.5 * (0.98 + 0.2));
        assert!(
            sperke_geo::angles::angle_dist(p.yaw, expect) < 1e-6,
            "yaw {} vs {}",
            p.yaw,
            expect
        );
    }

    #[test]
    fn dead_reckoning_uses_last_velocity() {
        let h = history_linear(1.0, 10);
        let p = DeadReckoning.predict(&h, SimDuration::from_millis(100));
        let last_t = h.last().unwrap().0.as_secs_f64();
        assert!((p.yaw - (last_t + 0.1)).abs() < 1e-9);
    }

    #[test]
    fn single_sample_histories_fall_back_to_persistence() {
        let h = vec![(SimTime::ZERO, Orientation::from_degrees(30.0, 5.0, 0.0))];
        for p in [
            LinearRegression::default().predict(&h, SimDuration::from_secs(1)),
            DeadReckoning.predict(&h, SimDuration::from_secs(1)),
            DampedRegression::default().predict(&h, SimDuration::from_secs(1)),
        ] {
            assert!(p.angular_distance(&h[0].1) < 1e-9);
        }
    }

    #[test]
    fn damped_regression_travels_less_than_raw() {
        let h = history_linear(1.5, 50);
        let horizon = SimDuration::from_secs(2);
        let now = h.last().unwrap().1;
        let raw = LinearRegression::default().predict(&h, horizon);
        let damped = DampedRegression::default().predict(&h, horizon);
        assert!(
            now.angular_distance(&damped) < now.angular_distance(&raw),
            "damping must shrink the extrapolated displacement"
        );
        // But still move in the same direction.
        assert!(damped.yaw > now.yaw);
    }

    #[test]
    fn alpha_beta_tracks_linear_motion() {
        let h = history_linear(1.0, 50);
        let p = AlphaBeta::default().predict(&h, SimDuration::from_millis(500));
        let expect = h.last().unwrap().0.as_secs_f64() + 0.5;
        assert!((p.yaw - expect).abs() < 0.08, "yaw {} vs {}", p.yaw, expect);
    }

    #[test]
    fn alpha_beta_handles_wraparound() {
        let h: Vec<(SimTime, Orientation)> = (0..50)
            .map(|i| {
                let t = i as f64 * 0.02;
                (
                    SimTime::from_secs_f64(t),
                    Orientation::new(3.0 + 0.5 * t, 0.0, 0.0),
                )
            })
            .collect();
        let p = AlphaBeta::default().predict(&h, SimDuration::from_millis(200));
        let expect = sperke_geo::angles::wrap_pi(3.0 + 0.5 * 1.18);
        assert!(
            sperke_geo::angles::angle_dist(p.yaw, expect) < 0.1,
            "yaw {} vs {}",
            p.yaw,
            expect
        );
    }

    #[test]
    fn ensemble_follows_the_better_member() {
        // Linear motion: the regression/alpha-beta member must beat
        // persistence, and the ensemble should match it closely.
        let h = history_linear(1.0, 60);
        let horizon = SimDuration::from_millis(400);
        let e = Ensemble::standard().predict(&h, horizon);
        let persist = Persistence.predict(&h, horizon);
        let truth = Orientation::new(h.last().unwrap().0.as_secs_f64() + 0.4, 0.0, 0.0);
        assert!(
            e.angular_distance(&truth) < persist.angular_distance(&truth),
            "ensemble must beat pure persistence on linear motion"
        );
    }

    #[test]
    fn ensemble_short_history_falls_back() {
        let h = vec![(SimTime::ZERO, Orientation::from_degrees(12.0, 0.0, 0.0))];
        let p = Ensemble::standard().predict(&h, SimDuration::from_secs(1));
        assert!(p.angular_distance(&h[0].1) < 1e-9);
    }

    #[test]
    fn damped_equals_raw_at_zero_horizon() {
        let h = history_linear(1.0, 50);
        let d = DampedRegression::default().predict(&h, SimDuration::ZERO);
        let now = h.last().unwrap().1;
        assert!(d.angular_distance(&now) < 1e-9);
    }
}
