//! Cross-user viewing statistics: the "big data" prior (§3.2).
//!
//! "How to leverage multiple users' viewing statistics of the same video
//! to guide chunk fetching — we can give popular chunks higher priorities
//! when prefetching them, thus making long-term prediction feasible."
//!
//! A [`Heatmap`] holds, per chunk time and tile, the fraction of
//! observed viewers whose viewport included that tile. It can be built
//! offline from an ensemble of [`HeadTrace`]s, or updated online one
//! observation at a time (the realtime crowd-sourcing of §3.4.2).

use crate::trace::HeadTrace;
use serde::{Deserialize, Serialize};
use sperke_geo::{TileGrid, TileId, Viewport, VisibilityCache};
use sperke_sim::{SimDuration, SimTime};
use sperke_video::ChunkTime;

/// Per-(chunk, tile) view-probability table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heatmap {
    grid: TileGrid,
    chunk_duration: SimDuration,
    /// `counts[t][tile]` = number of viewers who saw the tile in chunk t.
    counts: Vec<Vec<u32>>,
    /// Number of viewers observed per chunk.
    viewers: Vec<u32>,
}

impl Heatmap {
    /// An empty heatmap for `chunks` chunk times.
    pub fn empty(grid: TileGrid, chunk_duration: SimDuration, chunks: u32) -> Heatmap {
        assert!(chunks > 0, "need at least one chunk");
        Heatmap {
            grid,
            chunk_duration,
            counts: vec![vec![0; grid.tile_count()]; chunks as usize],
            viewers: vec![0; chunks as usize],
        }
    }

    /// Build from an ensemble of traces: for every chunk window, each
    /// viewer contributes the union of tiles visible at three instants
    /// within the window (start / middle / end of chunk).
    pub fn build(
        grid: TileGrid,
        chunk_duration: SimDuration,
        chunks: u32,
        traces: &[HeadTrace],
    ) -> Heatmap {
        let mut map = Heatmap::empty(grid, chunk_duration, chunks);
        // One memo across the whole ensemble: window boundaries are
        // shared between adjacent chunks and hotspots make viewers
        // revisit the same gazes, so the build is hit-heavy.
        let vis = VisibilityCache::default();
        for trace in traces {
            for t in 0..chunks {
                let tiles =
                    visible_in_window_cached(grid, chunk_duration, ChunkTime(t), trace, &vis);
                map.record(ChunkTime(t), &tiles);
            }
        }
        map
    }

    /// Record one viewer's visible-tile set for a chunk (online update).
    pub fn record(&mut self, t: ChunkTime, tiles: &[TileId]) {
        let idx = t.index();
        assert!(idx < self.counts.len(), "chunk beyond heatmap");
        self.viewers[idx] += 1;
        let mut seen = vec![false; self.grid.tile_count()];
        for &tile in tiles {
            if !seen[tile.index()] {
                seen[tile.index()] = true;
                self.counts[idx][tile.index()] += 1;
            }
        }
    }

    /// Number of chunk times covered.
    pub fn chunks(&self) -> u32 {
        self.counts.len() as u32
    }

    /// The tile grid.
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// Viewers observed for chunk `t`.
    pub fn viewer_count(&self, t: ChunkTime) -> u32 {
        self.viewers[t.index()]
    }

    /// Probability that a viewer's viewport includes `tile` during chunk
    /// `t`. With no observations, falls back to a uniform prior equal to
    /// the tile's share of the sphere scaled by a typical FoV footprint.
    pub fn tile_probability(&self, t: ChunkTime, tile: TileId) -> f64 {
        let idx = t.index().min(self.counts.len() - 1);
        let n = self.viewers[idx];
        if n == 0 {
            // Uninformed prior: a headset FoV covers roughly 1/5 of the
            // sphere; spread that probability by tile solid angle.
            let share = self.grid.rect(tile).solid_angle() / (4.0 * std::f64::consts::PI);
            return (share * 5.0).min(1.0);
        }
        self.counts[idx][tile.index()] as f64 / n as f64
    }

    /// Tiles ordered by descending probability for chunk `t` (ties by id).
    pub fn ranked_tiles(&self, t: ChunkTime) -> Vec<(TileId, f64)> {
        let mut v: Vec<(TileId, f64)> = self
            .grid
            .tiles()
            .map(|tile| (tile, self.tile_probability(t, tile)))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN").then(a.0.cmp(&b.0)));
        v
    }

    /// The most-viewed tile for chunk `t`.
    pub fn top_tile(&self, t: ChunkTime) -> TileId {
        self.ranked_tiles(t)[0].0
    }

    /// The `k` most-viewed tiles for chunk `t`, best first — the prefetch
    /// working set an edge server pre-warms for a crowd.
    ///
    /// The ordering is explicitly total: raw view count descending, ties
    /// broken by ascending tile index, compared as integers so no float
    /// round-trip can perturb the cut. Because every probability at a
    /// chunk shares one denominator (the viewer count), this is the same
    /// order [`Heatmap::ranked_tiles`] produces — but it stays total under
    /// any sequence of [`Heatmap::merge`]s, which cross-edge heatmap
    /// sharing relies on for order-independent prefetch digests. With no
    /// observations the solid-angle prior ranking is used instead.
    pub fn top_k(&self, t: ChunkTime, k: usize) -> Vec<TileId> {
        let idx = t.index().min(self.counts.len() - 1);
        if self.viewers[idx] == 0 {
            return self
                .ranked_tiles(t)
                .into_iter()
                .take(k)
                .map(|(tile, _)| tile)
                .collect();
        }
        let counts = &self.counts[idx];
        let mut tiles: Vec<TileId> = self.grid.tiles().collect();
        tiles.sort_by(|a, b| counts[b.index()].cmp(&counts[a.index()]).then(a.cmp(b)));
        tiles.truncate(k);
        tiles
    }

    /// Shannon entropy (bits) of the normalized tile distribution at `t`:
    /// low entropy = consensus (good for long-horizon prediction),
    /// high entropy = viewers scattered.
    pub fn entropy(&self, t: ChunkTime) -> f64 {
        let probs: Vec<f64> = self
            .grid
            .tiles()
            .map(|tile| self.tile_probability(t, tile))
            .collect();
        let total: f64 = probs.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        -probs
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| {
                let q = p / total;
                q * q.log2()
            })
            .sum::<f64>()
    }

    /// Merge another heatmap's observations into this one (same shape).
    pub fn merge(&mut self, other: &Heatmap) {
        assert_eq!(self.grid, other.grid, "grids must match");
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "chunk counts must match"
        );
        for (mine, theirs) in self.viewers.iter_mut().zip(&other.viewers) {
            *mine += theirs;
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            for (m, t) in mine.iter_mut().zip(theirs) {
                *m += t;
            }
        }
    }
}

/// The union of tiles visible to a trace's viewer during one chunk
/// window (sampled at the window's start, middle and end).
pub fn visible_in_window(
    grid: TileGrid,
    chunk_duration: SimDuration,
    t: ChunkTime,
    trace: &HeadTrace,
) -> Vec<TileId> {
    visible_in_window_cached(grid, chunk_duration, t, trace, &VisibilityCache::disabled())
}

/// [`visible_in_window`] through a visibility memo. Results are
/// bit-identical whichever cache handle is passed; callers that sweep
/// many chunks or traces should share one cache across calls.
pub fn visible_in_window_cached(
    grid: TileGrid,
    chunk_duration: SimDuration,
    t: ChunkTime,
    trace: &HeadTrace,
    vis: &VisibilityCache,
) -> Vec<TileId> {
    let start = SimTime::ZERO + chunk_duration * t.0 as u64;
    let mut tiles = Vec::new();
    for frac in [0.0, 0.5, 1.0] {
        let at = start + chunk_duration.mul_f64(frac);
        let vp = Viewport::headset(trace.at(at));
        for tile in vis.visible_tile_set(&vp, &grid) {
            if !tiles.contains(&tile) {
                tiles.push(tile);
            }
        }
    }
    tiles.sort();
    tiles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_ensemble, AttentionModel};
    use sperke_geo::Orientation;

    fn fixed_trace(yaw_deg: f64) -> HeadTrace {
        HeadTrace::from_fn(SimDuration::from_secs(4), move |_| {
            Orientation::from_degrees(yaw_deg, 0.0, 0.0)
        })
    }

    #[test]
    fn record_and_probability() {
        let grid = TileGrid::new(2, 4);
        let mut map = Heatmap::empty(grid, SimDuration::from_secs(1), 2);
        map.record(ChunkTime(0), &[TileId(0), TileId(1)]);
        map.record(ChunkTime(0), &[TileId(1)]);
        assert_eq!(map.viewer_count(ChunkTime(0)), 2);
        assert_eq!(map.tile_probability(ChunkTime(0), TileId(1)), 1.0);
        assert_eq!(map.tile_probability(ChunkTime(0), TileId(0)), 0.5);
        assert_eq!(map.tile_probability(ChunkTime(0), TileId(5)), 0.0);
    }

    #[test]
    fn duplicate_tiles_in_one_record_count_once() {
        let grid = TileGrid::new(2, 4);
        let mut map = Heatmap::empty(grid, SimDuration::from_secs(1), 1);
        map.record(ChunkTime(0), &[TileId(3), TileId(3), TileId(3)]);
        assert_eq!(map.tile_probability(ChunkTime(0), TileId(3)), 1.0);
        assert_eq!(map.viewer_count(ChunkTime(0)), 1);
    }

    #[test]
    fn unobserved_chunk_uses_uniform_prior() {
        let grid = TileGrid::new(2, 4);
        let map = Heatmap::empty(grid, SimDuration::from_secs(1), 1);
        let p = map.tile_probability(ChunkTime(0), TileId(4));
        assert!(p > 0.0 && p < 1.0);
    }

    #[test]
    fn build_from_consensus_traces_finds_hotspot() {
        let grid = TileGrid::new(4, 6);
        // All viewers stare at yaw=0 -> the front tiles dominate.
        let traces: Vec<HeadTrace> = (0..5).map(|_| fixed_trace(0.0)).collect();
        let map = Heatmap::build(grid, SimDuration::from_secs(1), 4, &traces);
        let top = map.top_tile(ChunkTime(2));
        let front = grid.tile_of_direction(sperke_geo::Vec3::X);
        // Front tile must be at probability 1; top tile is one of the
        // tiles around the gaze.
        assert_eq!(map.tile_probability(ChunkTime(2), front), 1.0);
        assert!(map.tile_probability(ChunkTime(2), top) >= 1.0 - 1e-9);
        // Tiles behind the viewer are at 0.
        let behind = grid.tile_of_direction(-sperke_geo::Vec3::X);
        assert_eq!(map.tile_probability(ChunkTime(2), behind), 0.0);
    }

    #[test]
    fn entropy_lower_for_consensus_than_scatter() {
        let grid = TileGrid::new(4, 6);
        let consensus: Vec<HeadTrace> = (0..6).map(|_| fixed_trace(0.0)).collect();
        let scattered: Vec<HeadTrace> = (0..6)
            .map(|i| fixed_trace(i as f64 * 60.0 - 180.0))
            .collect();
        let hc = Heatmap::build(grid, SimDuration::from_secs(1), 2, &consensus);
        let hs = Heatmap::build(grid, SimDuration::from_secs(1), 2, &scattered);
        assert!(
            hc.entropy(ChunkTime(0)) < hs.entropy(ChunkTime(0)),
            "consensus {:.2} vs scatter {:.2}",
            hc.entropy(ChunkTime(0)),
            hs.entropy(ChunkTime(0))
        );
    }

    #[test]
    fn merge_adds_observations() {
        let grid = TileGrid::new(2, 4);
        let mut a = Heatmap::empty(grid, SimDuration::from_secs(1), 1);
        let mut b = Heatmap::empty(grid, SimDuration::from_secs(1), 1);
        a.record(ChunkTime(0), &[TileId(0)]);
        b.record(ChunkTime(0), &[TileId(0)]);
        b.record(ChunkTime(0), &[TileId(1)]);
        a.merge(&b);
        assert_eq!(a.viewer_count(ChunkTime(0)), 3);
        assert!((a.tile_probability(ChunkTime(0), TileId(0)) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ensemble_heatmap_tracks_generated_hotspot() {
        let att = AttentionModel::stage(5);
        let traces = generate_ensemble(&att, 8, SimDuration::from_secs(8), 17);
        let grid = TileGrid::new(4, 6);
        let map = Heatmap::build(grid, SimDuration::from_secs(1), 8, &traces);
        let stage_tile = grid.tile_of_direction(att.hotspots()[0].position(4.0).direction());
        let p = map.tile_probability(ChunkTime(4), stage_tile);
        assert!(p > 0.5, "stage tile only at p={p}");
    }

    #[test]
    fn top_k_order_is_total_and_matches_ranked_tiles() {
        let grid = TileGrid::new(2, 4);
        let mut map = Heatmap::empty(grid, SimDuration::from_secs(1), 1);
        // Deliberate count ties: tiles 1 and 5 both at 1, tiles 2 and 6
        // both at 2 — the cut must order ties by ascending tile index.
        map.record(ChunkTime(0), &[TileId(2), TileId(6), TileId(1)]);
        map.record(ChunkTime(0), &[TileId(2), TileId(6), TileId(5)]);
        let top = map.top_k(ChunkTime(0), 4);
        assert_eq!(top, vec![TileId(2), TileId(6), TileId(1), TileId(5)]);
        // The integer order agrees with the float ranking end to end.
        let ranked: Vec<TileId> = map
            .ranked_tiles(ChunkTime(0))
            .into_iter()
            .map(|(tile, _)| tile)
            .collect();
        assert_eq!(map.top_k(ChunkTime(0), 8), ranked);
        // Unobserved chunks fall back to the prior ranking.
        let empty = Heatmap::empty(grid, SimDuration::from_secs(1), 1);
        let prior: Vec<TileId> = empty
            .ranked_tiles(ChunkTime(0))
            .into_iter()
            .take(3)
            .map(|(tile, _)| tile)
            .collect();
        assert_eq!(empty.top_k(ChunkTime(0), 3), prior);
    }

    #[test]
    fn top_k_invariant_under_merge_order() {
        let grid = TileGrid::new(4, 6);
        let mut parts: Vec<Heatmap> = Vec::new();
        for yaw in [0.0, 90.0, -90.0, 180.0] {
            let traces: Vec<HeadTrace> = (0..3).map(|_| fixed_trace(yaw)).collect();
            parts.push(Heatmap::build(grid, SimDuration::from_secs(1), 2, &traces));
        }
        let fold = |order: &[usize]| {
            let mut acc = Heatmap::empty(grid, SimDuration::from_secs(1), 2);
            for &i in order {
                acc.merge(&parts[i]);
            }
            acc.top_k(ChunkTime(0), 6)
        };
        let forward = fold(&[0, 1, 2, 3]);
        assert_eq!(forward, fold(&[3, 2, 1, 0]));
        assert_eq!(forward, fold(&[2, 0, 3, 1]));
    }

    #[test]
    fn ranked_tiles_are_sorted() {
        let grid = TileGrid::new(2, 4);
        let mut map = Heatmap::empty(grid, SimDuration::from_secs(1), 1);
        map.record(ChunkTime(0), &[TileId(2)]);
        map.record(ChunkTime(0), &[TileId(2), TileId(3)]);
        let ranked = map.ranked_tiles(ChunkTime(0));
        assert_eq!(ranked[0].0, TileId(2));
        assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1));
    }
}
