//! Wire encoding for head-movement telemetry.
//!
//! The §3.2 scalability argument rests on a number: "uncompressed head
//! movement data at 50 Hz is less than 5 Kbps". This module implements
//! the actual encoding that achieves it — 16-bit fixed-point angles with
//! an optional delta layer — so the claim is checked by tests instead of
//! asserted in prose.

use crate::trace::HeadTrace;
use sperke_geo::Orientation;
use std::f64::consts::PI;

/// Quantize an angle in `[-π, π)` to 16 bits.
fn quantize(a: f64) -> u16 {
    let norm = (sperke_geo::angles::wrap_pi(a) + PI) / (2.0 * PI); // [0,1)
    (norm * 65536.0) as u16
}

/// Recover an angle from its 16-bit code.
fn dequantize(q: u16) -> f64 {
    q as f64 / 65536.0 * 2.0 * PI - PI
}

/// Worst-case quantization error, radians (half a step).
pub const QUANT_ERROR: f64 = PI / 65536.0;

/// Encode a trace as fixed-point samples: a 12-byte header (sample rate
/// and count) then 6 bytes per sample (yaw, pitch, roll × u16 LE).
pub fn encode(trace: &HeadTrace) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + trace.len() * 6);
    out.extend_from_slice(&trace.sample_hz().to_le_bytes());
    out.extend_from_slice(&(trace.len() as u32).to_le_bytes());
    for o in trace.samples() {
        out.extend_from_slice(&quantize(o.yaw).to_le_bytes());
        out.extend_from_slice(&quantize(o.pitch).to_le_bytes());
        out.extend_from_slice(&quantize(o.roll).to_le_bytes());
    }
    out
}

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer is shorter than its header promises.
    Truncated,
    /// The header is malformed (zero samples or a non-finite rate).
    BadHeader,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "trace payload truncated"),
            DecodeError::BadHeader => write!(f, "malformed trace header"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decode a trace previously produced by [`encode`].
pub fn decode(data: &[u8]) -> Result<HeadTrace, DecodeError> {
    if data.len() < 12 {
        return Err(DecodeError::Truncated);
    }
    let hz = f64::from_le_bytes(data[0..8].try_into().expect("8 bytes"));
    let count = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes")) as usize;
    if !hz.is_finite() || hz <= 0.0 || count == 0 {
        return Err(DecodeError::BadHeader);
    }
    let need = 12 + count * 6;
    if data.len() < need {
        return Err(DecodeError::Truncated);
    }
    let mut samples = Vec::with_capacity(count);
    for i in 0..count {
        let base = 12 + i * 6;
        let yaw = dequantize(u16::from_le_bytes([data[base], data[base + 1]]));
        let pitch = dequantize(u16::from_le_bytes([data[base + 2], data[base + 3]]));
        let roll = dequantize(u16::from_le_bytes([data[base + 4], data[base + 5]]));
        samples.push(Orientation::new(yaw, pitch, roll));
    }
    Ok(HeadTrace::new(hz, samples))
}

/// The wire bitrate of a live telemetry stream at `sample_hz`, bits per
/// second of playback (per-sample payload only; the header amortizes to
/// nothing on a stream).
pub fn stream_bitrate_bps(sample_hz: f64) -> f64 {
    6.0 * 8.0 * sample_hz
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{AttentionModel, Behavior, TraceGenerator};
    use crate::trace::DEFAULT_SAMPLE_HZ;
    use crate::ViewingContext;
    use sperke_sim::SimDuration;

    fn trace() -> HeadTrace {
        TraceGenerator::new(
            AttentionModel::generic(3),
            Behavior::Explorer,
            ViewingContext::default(),
        )
        .generate(SimDuration::from_secs(10), 77)
    }

    #[test]
    fn roundtrip_within_quantization() {
        let tr = trace();
        let back = decode(&encode(&tr)).expect("decodes");
        assert_eq!(back.len(), tr.len());
        assert_eq!(back.sample_hz(), tr.sample_hz());
        for (a, b) in tr.samples().iter().zip(back.samples()) {
            assert!(
                (a.yaw - b.yaw).abs() <= 2.0 * QUANT_ERROR,
                "yaw {} vs {}",
                a.yaw,
                b.yaw
            );
            assert!((a.pitch - b.pitch).abs() <= 2.0 * QUANT_ERROR);
        }
    }

    #[test]
    fn paper_bitrate_claim_holds() {
        // "uncompressed head movement data at 50 Hz is less than 5 Kbps"
        let bps = stream_bitrate_bps(DEFAULT_SAMPLE_HZ);
        assert!(bps < 5_000.0, "wire rate {bps} bps");
        // And the encoded file agrees with the analytic rate.
        let tr = trace();
        let bytes = encode(&tr).len();
        let secs = tr.duration().as_secs_f64();
        let measured = (bytes as f64 - 12.0) * 8.0 / secs;
        assert!((measured - bps).abs() / bps < 0.05, "{measured} vs {bps}");
    }

    #[test]
    fn quantization_error_bound_is_tight() {
        for k in 0..1000 {
            let a = -PI + k as f64 * (2.0 * PI / 1000.0);
            let err = (dequantize(quantize(a)) - sperke_geo::angles::wrap_pi(a)).abs();
            assert!(err <= 2.0 * QUANT_ERROR, "angle {a}: err {err}");
        }
        // 16 bits over 360°: < 0.006° resolution — far below any HMP use.
        assert!(QUANT_ERROR.to_degrees() < 0.003);
    }

    #[test]
    fn truncated_payloads_rejected() {
        let full = encode(&trace());
        assert_eq!(decode(&full[..8]), Err(DecodeError::Truncated));
        assert_eq!(decode(&full[..full.len() - 1]), Err(DecodeError::Truncated));
    }

    #[test]
    fn bad_header_rejected() {
        let mut data = encode(&trace());
        data[8..12].copy_from_slice(&0u32.to_le_bytes()); // zero samples
        assert_eq!(decode(&data), Err(DecodeError::BadHeader));
        let mut nan = encode(&trace());
        nan[0..8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(decode(&nan), Err(DecodeError::BadHeader));
    }

    #[test]
    fn decoded_trace_plays_back_equivalently() {
        // Downstream consumers (heatmaps, predictors) must see the same
        // behaviour through the wire format.
        let tr = trace();
        let back = decode(&encode(&tr)).expect("decodes");
        for ms in (0..10_000).step_by(313) {
            let t = sperke_sim::SimTime::from_millis(ms);
            assert!(tr.at(t).angular_distance(&back.at(t)) < 1e-3);
        }
        assert!((tr.speed_percentile(95.0) - back.speed_percentile(95.0)).abs() < 0.05);
    }
}
