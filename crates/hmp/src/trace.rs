//! Head-movement traces: timestamped orientation logs.
//!
//! The §3.2 study collects "users' head movement during 360° video
//! playback ... uncompressed head movement data at 50 Hz". A
//! [`HeadTrace`] is that log: orientation samples at a fixed rate, with
//! interpolation, velocity estimation and a JSON on-disk format.

use crate::context::ViewingContext;
use serde::{Deserialize, Serialize};
use sperke_geo::{angles, Orientation};
use sperke_sim::{SimDuration, SimTime};

/// The paper's logging rate.
pub const DEFAULT_SAMPLE_HZ: f64 = 50.0;

/// A recorded head-movement trace for one viewing session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadTrace {
    /// Sampling rate in Hz.
    sample_hz: f64,
    /// Orientation samples; sample `i` is at time `i / sample_hz`.
    samples: Vec<Orientation>,
    /// The session's contextual metadata.
    pub context: ViewingContext,
    /// Identifier of the (anonymous) user, for cross-video mining.
    pub user_id: u64,
    /// Identifier of the video watched.
    pub video_id: u64,
}

impl HeadTrace {
    /// Build from samples at `sample_hz`.
    pub fn new(sample_hz: f64, samples: Vec<Orientation>) -> HeadTrace {
        assert!(sample_hz > 0.0, "sample rate must be positive");
        assert!(!samples.is_empty(), "trace must have samples");
        HeadTrace {
            sample_hz,
            samples,
            context: ViewingContext::default(),
            user_id: 0,
            video_id: 0,
        }
    }

    /// Build by sampling a function of time at the default 50 Hz.
    pub fn from_fn(duration: SimDuration, f: impl Fn(SimTime) -> Orientation) -> HeadTrace {
        let hz = DEFAULT_SAMPLE_HZ;
        let n = (duration.as_secs_f64() * hz).ceil() as usize + 1;
        let samples = (0..n)
            .map(|i| f(SimTime::from_secs_f64(i as f64 / hz)))
            .collect();
        HeadTrace::new(hz, samples)
    }

    /// Sampling rate.
    pub fn sample_hz(&self) -> f64 {
        self.sample_hz
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Never true (construction requires samples); here for API symmetry.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Duration covered by the trace.
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_secs_f64((self.samples.len() - 1) as f64 / self.sample_hz)
    }

    /// Raw samples.
    pub fn samples(&self) -> &[Orientation] {
        &self.samples
    }

    /// The orientation at `time`, slerping between samples and clamping
    /// beyond either end.
    pub fn at(&self, time: SimTime) -> Orientation {
        let pos = time.as_secs_f64() * self.sample_hz;
        if pos <= 0.0 {
            return self.samples[0];
        }
        let idx = pos.floor() as usize;
        if idx + 1 >= self.samples.len() {
            return *self.samples.last().expect("non-empty");
        }
        let frac = pos - idx as f64;
        self.samples[idx].slerp(&self.samples[idx + 1], frac)
    }

    /// Angular speed (great-circle, radians/second) at `time`, estimated
    /// by central difference over one sample period.
    pub fn angular_speed(&self, time: SimTime) -> f64 {
        let dt = 1.0 / self.sample_hz;
        let t0 = SimTime::from_secs_f64((time.as_secs_f64() - dt / 2.0).max(0.0));
        let t1 = SimTime::from_secs_f64(time.as_secs_f64() + dt / 2.0);
        let a = self.at(t0);
        let b = self.at(t1);
        a.angular_distance(&b) * self.sample_hz
    }

    /// The `p`-th percentile of angular speed over the whole trace
    /// (rad/s). Used for the per-user speed bound of §3.2 ("a user's
    /// head movement speed can be learned to bound the latency
    /// requirement for fetching a distant tile").
    pub fn speed_percentile(&self, p: f64) -> f64 {
        let speeds: Vec<f64> = (0..self.samples.len().saturating_sub(1))
            .map(|i| self.samples[i].angular_distance(&self.samples[i + 1]) * self.sample_hz)
            .collect();
        sperke_sim::stats::percentile(&speeds, p)
    }

    /// The mean yaw of the trace (circular mean), the session's "front".
    pub fn mean_yaw(&self) -> f64 {
        let (s, c) = self
            .samples
            .iter()
            .fold((0.0, 0.0), |(s, c), o| (s + o.yaw.sin(), c + o.yaw.cos()));
        angles::wrap_pi(s.atan2(c))
    }

    /// The trailing window of samples ending at `time`, at most
    /// `max_len` entries (newest last). Used as predictor input.
    pub fn history(&self, time: SimTime, max_len: usize) -> Vec<(SimTime, Orientation)> {
        let mut out = Vec::new();
        self.history_into(time, max_len, &mut out);
        out
    }

    /// Allocation-free form of [`HeadTrace::history`]: the window
    /// replaces the contents of `out`. Same entries, same order.
    pub fn history_into(
        &self,
        time: SimTime,
        max_len: usize,
        out: &mut Vec<(SimTime, Orientation)>,
    ) {
        let end_idx =
            ((time.as_secs_f64() * self.sample_hz).floor() as usize).min(self.samples.len() - 1);
        let start = end_idx.saturating_sub(max_len.saturating_sub(1));
        out.clear();
        out.extend((start..=end_idx).map(|i| {
            (
                SimTime::from_secs_f64(i as f64 / self.sample_hz),
                self.samples[i],
            )
        }));
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serializes")
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<HeadTrace, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_trace() -> HeadTrace {
        // Yaw sweeps 0 -> 1 rad over 2 seconds.
        HeadTrace::from_fn(SimDuration::from_secs(2), |t| {
            Orientation::new(t.as_secs_f64() * 0.5, 0.0, 0.0)
        })
    }

    #[test]
    fn from_fn_samples_at_50hz() {
        let tr = linear_trace();
        assert_eq!(tr.sample_hz(), 50.0);
        assert_eq!(tr.len(), 101);
        assert!((tr.duration().as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn at_interpolates_between_samples() {
        let tr = linear_trace();
        let o = tr.at(SimTime::from_millis(1010)); // between samples 50 and 51
        assert!((o.yaw - 0.505).abs() < 1e-9, "yaw {}", o.yaw);
    }

    #[test]
    fn at_clamps_past_ends() {
        let tr = linear_trace();
        assert_eq!(
            tr.at(SimTime::from_secs(99)).yaw,
            tr.samples().last().unwrap().yaw
        );
        assert_eq!(tr.at(SimTime::ZERO), tr.samples()[0]);
    }

    #[test]
    fn angular_speed_matches_slope() {
        let tr = linear_trace();
        let v = tr.angular_speed(SimTime::from_secs(1));
        assert!((v - 0.5).abs() < 0.02, "speed {v}");
    }

    #[test]
    fn speed_percentile_of_constant_motion() {
        let tr = linear_trace();
        assert!((tr.speed_percentile(50.0) - 0.5).abs() < 0.02);
        assert!((tr.speed_percentile(95.0) - 0.5).abs() < 0.02);
    }

    #[test]
    fn mean_yaw_handles_wraparound() {
        // Samples straddling ±180°: circular mean must be near 180, not 0.
        let samples = vec![
            Orientation::from_degrees(170.0, 0.0, 0.0),
            Orientation::from_degrees(-170.0, 0.0, 0.0),
        ];
        let tr = HeadTrace::new(50.0, samples);
        assert!(tr.mean_yaw().abs() > 3.0, "mean_yaw {}", tr.mean_yaw());
    }

    #[test]
    fn history_window() {
        let tr = linear_trace();
        let h = tr.history(SimTime::from_secs(1), 10);
        assert_eq!(h.len(), 10);
        assert!(
            h.windows(2).all(|w| w[0].0 < w[1].0),
            "ordered oldest-first"
        );
        assert!((h.last().unwrap().0.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn history_at_start_is_short() {
        let tr = linear_trace();
        let h = tr.history(SimTime::ZERO, 10);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn json_roundtrip() {
        let mut tr = linear_trace();
        tr.user_id = 9;
        tr.video_id = 4;
        let back = HeadTrace::from_json(&tr.to_json()).expect("parses");
        // JSON prints decimal floats, so compare within tolerance.
        assert_eq!(back.user_id, 9);
        assert_eq!(back.video_id, 4);
        assert_eq!(back.context, tr.context);
        assert_eq!(back.len(), tr.len());
        for (a, b) in tr.samples().iter().zip(back.samples()) {
            assert!((a.yaw - b.yaw).abs() < 1e-9 && (a.pitch - b.pitch).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic]
    fn empty_trace_rejected() {
        HeadTrace::new(50.0, vec![]);
    }
}
