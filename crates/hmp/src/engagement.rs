//! Engagement estimation (§3.2): "we can leverage eye gaze tracking to
//! analyze the user's engagement level, which possibly indicates the
//! likelihood of sharp head movement".
//!
//! Without eye trackers the observable proxy is *gaze stability*: an
//! engaged viewer locks onto content (low jitter, few saccades); a
//! disengaged viewer scans. The estimator turns recent head motion into
//! an engagement score, and the score into a saccade-likelihood
//! adjustment the forecaster can use to widen or tighten its
//! uncertainty.

use serde::{Deserialize, Serialize};
use sperke_geo::Orientation;
use sperke_sim::SimTime;

/// Engagement level in `[0, 1]`: 1 = locked onto content.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Engagement(pub f64);

impl Engagement {
    /// The uncertainty multiplier the forecaster should apply: an
    /// engaged viewer's motion is more predictable (× <1), a
    /// disengaged viewer may saccade anywhere (× >1).
    pub fn uncertainty_factor(self) -> f64 {
        // Map [0,1] engagement to [1.6, 0.7].
        1.6 - 0.9 * self.0.clamp(0.0, 1.0)
    }

    /// Probability of a saccade (> 30° jump) in the next second, an
    /// empirical-shaped logistic of disengagement.
    pub fn saccade_probability(self) -> f64 {
        let x = 1.0 - self.0.clamp(0.0, 1.0);
        0.05 + 0.5 * x * x
    }
}

/// Tuning for the estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngagementConfig {
    /// Head speed (rad/s) considered fully "locked".
    pub calm_speed: f64,
    /// Head speed at/above which the viewer counts as scanning.
    pub scan_speed: f64,
}

impl Default for EngagementConfig {
    fn default() -> Self {
        EngagementConfig {
            calm_speed: 0.1,
            scan_speed: 1.2,
        }
    }
}

/// Estimate engagement from a gaze history window (oldest first).
///
/// The score combines mean speed (scanning) and direction reversals
/// (restlessness); both are normalized against the config thresholds.
pub fn estimate_engagement(
    history: &[(SimTime, Orientation)],
    config: &EngagementConfig,
) -> Engagement {
    if history.len() < 3 {
        return Engagement(0.5); // no evidence either way
    }
    // Mean angular speed over the window.
    let mut speeds = Vec::with_capacity(history.len() - 1);
    let mut yaw_rates = Vec::with_capacity(history.len() - 1);
    for w in history.windows(2) {
        let dt = (w[1].0 - w[0].0).as_secs_f64();
        if dt <= 0.0 {
            continue;
        }
        speeds.push(w[0].1.angular_distance(&w[1].1) / dt);
        yaw_rates.push(sperke_geo::angles::wrap_pi(w[1].1.yaw - w[0].1.yaw) / dt);
    }
    if speeds.is_empty() {
        return Engagement(0.5);
    }
    let mean_speed = speeds.iter().sum::<f64>() / speeds.len() as f64;
    // Reversal fraction: sign changes of the yaw rate among decisive samples.
    let decisive: Vec<f64> = yaw_rates
        .iter()
        .copied()
        .filter(|r| r.abs() > 0.05)
        .collect();
    let reversals = decisive
        .windows(2)
        .filter(|w| w[0].signum() != w[1].signum())
        .count();
    let reversal_frac = if decisive.len() > 1 {
        reversals as f64 / (decisive.len() - 1) as f64
    } else {
        0.0
    };

    let speed_score = 1.0
        - ((mean_speed - config.calm_speed) / (config.scan_speed - config.calm_speed))
            .clamp(0.0, 1.0);
    let steadiness = 1.0 - reversal_frac.clamp(0.0, 1.0);
    Engagement((0.7 * speed_score + 0.3 * steadiness).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ViewingContext;
    use crate::generate::{AttentionModel, Behavior, TraceGenerator};
    use sperke_sim::SimDuration;

    fn history_of(behavior: Behavior, seed: u64) -> Vec<(SimTime, Orientation)> {
        let trace = TraceGenerator::new(
            AttentionModel::generic(2),
            behavior,
            ViewingContext::default(),
        )
        .generate(SimDuration::from_secs(20), seed);
        trace.history(SimTime::from_secs(15), 100)
    }

    #[test]
    fn still_viewer_scores_engaged() {
        let e = estimate_engagement(
            &history_of(Behavior::Still, 3),
            &EngagementConfig::default(),
        );
        assert!(e.0 > 0.6, "still viewer engagement {}", e.0);
    }

    #[test]
    fn explorer_scores_less_engaged_than_still() {
        let cfg = EngagementConfig::default();
        let still = estimate_engagement(&history_of(Behavior::Still, 3), &cfg);
        let explorer = estimate_engagement(&history_of(Behavior::Explorer, 3), &cfg);
        assert!(
            explorer.0 < still.0,
            "explorer {} should be below still {}",
            explorer.0,
            still.0
        );
    }

    #[test]
    fn short_history_is_neutral() {
        let h = vec![(SimTime::ZERO, Orientation::FRONT)];
        assert_eq!(estimate_engagement(&h, &EngagementConfig::default()).0, 0.5);
    }

    #[test]
    fn uncertainty_factor_monotone() {
        assert!(Engagement(1.0).uncertainty_factor() < Engagement(0.5).uncertainty_factor());
        assert!(Engagement(0.5).uncertainty_factor() < Engagement(0.0).uncertainty_factor());
        assert!((Engagement(1.0).uncertainty_factor() - 0.7).abs() < 1e-12);
        assert!((Engagement(0.0).uncertainty_factor() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn saccade_probability_rises_with_disengagement() {
        assert!(Engagement(0.1).saccade_probability() > Engagement(0.9).saccade_probability());
        for e in [0.0, 0.3, 0.7, 1.0] {
            let p = Engagement(e).saccade_probability();
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
