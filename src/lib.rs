//! Root package of the Sperke reproduction workspace.
//!
//! This crate only hosts the runnable `examples/` and the cross-crate
//! integration tests in `tests/`; the library surface lives in
//! [`sperke_core`] and the per-subsystem crates it re-exports.

pub use sperke_core::*;
